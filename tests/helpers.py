"""Shared test utilities: golden-reference layer execution and spec builders."""

from __future__ import annotations

import numpy as np

from repro.core.dtypes import DType
from repro.core.ops import (
    apply_activation,
    apply_norm,
    conv2d_depthwise,
    conv2d_pointwise,
    conv2d_standard,
)
from repro.ir.blocks import dsc_block, standard_conv
from repro.ir.graph import GlueSpec, ModelGraph
from repro.ir.layers import ConvKind, ConvSpec, EpilogueSpec
from repro.kernels.params import LayerParams


#: (name, stem channels) of the tiny zoo the serving/fleet tests register —
#: subsecond to plan, unlike the full-size zoo models.
TINY_ZOO = (("tiny_a", 8), ("tiny_b", 12), ("tiny_c", 16))


def tiny_model_builder(name: str, channels: int):
    """Zoo-compatible builder for a 3-layer stem+DSC+gap toy model."""

    def build(dtype: DType = DType.FP32) -> ModelGraph:
        g = ModelGraph(name)
        last = standard_conv(g, "stem", 3, channels, 32, 32, stride=2, dtype=dtype)
        last = dsc_block(g, "b1", channels, 2 * channels, 16, 16, after=last, dtype=dtype)
        g.add(GlueSpec("gap", "gap", 2 * channels), after=last)
        g.validate()
        return g

    return build


def register_tiny_zoo(monkeypatch) -> None:
    """Install the tiny models into repro.models.zoo for one test."""
    from repro.models.zoo import MODELS

    for name, channels in TINY_ZOO:
        monkeypatch.setitem(MODELS, name, tiny_model_builder(name, channels))


def ref_layer(params: LayerParams, x: np.ndarray) -> np.ndarray:
    """Golden execution of one conv layer + epilogue at the layer's dtype.

    Mirrors what every simulated kernel must produce: conv (int32/fp32
    accumulation), dequant (INT8), folded norm, activation, requant (INT8).
    """
    spec = params.spec
    if spec.kind is ConvKind.DEPTHWISE:
        acc = conv2d_depthwise(x, params.weights, spec.stride, spec.padding)
    elif spec.kind is ConvKind.POINTWISE:
        acc = conv2d_pointwise(x, params.weights, spec.stride)
    else:
        acc = conv2d_standard(x, params.weights, spec.stride, spec.padding)
    epi = params.epilogue
    if spec.dtype is DType.INT8:
        y = acc.astype(np.float64) * epi.dequant_multiplier()
    else:
        y = acc.astype(np.float32)
    if epi.norm_scale is not None:
        y = apply_norm(y, epi.norm_scale, epi.norm_shift)
    y = apply_activation(y, epi.activation)
    if spec.dtype is DType.INT8:
        return np.clip(np.rint(y / epi.out_scale.scale), -128, 127).astype(np.int8)
    return y.astype(np.float32)


def random_ifm(spec: ConvSpec, seed: int = 0) -> np.ndarray:
    """Deterministic random input matching a spec's IFM shape/dtype."""
    rng = np.random.default_rng(seed)
    if spec.dtype is DType.INT8:
        return rng.integers(-128, 128, spec.ifm.shape).astype(np.int8)
    return rng.standard_normal(spec.ifm.shape).astype(np.float32)


def pw_spec(
    name: str = "pw",
    c_in: int = 8,
    c_out: int = 16,
    h: int = 12,
    w: int = 12,
    stride: int = 1,
    dtype: DType = DType.FP32,
    activation: str | None = "relu",
    norm: bool = True,
) -> ConvSpec:
    return ConvSpec(
        name=name, kind=ConvKind.POINTWISE, in_channels=c_in, out_channels=c_out,
        in_h=h, in_w=w, kernel=1, stride=stride, padding=0, dtype=dtype,
        epilogue=EpilogueSpec(norm=norm, activation=activation),
    )


def dw_spec(
    name: str = "dw",
    c: int = 8,
    h: int = 12,
    w: int = 12,
    kernel: int = 3,
    stride: int = 1,
    dtype: DType = DType.FP32,
    activation: str | None = "relu",
    norm: bool = True,
) -> ConvSpec:
    return ConvSpec(
        name=name, kind=ConvKind.DEPTHWISE, in_channels=c, out_channels=c,
        in_h=h, in_w=w, kernel=kernel, stride=stride, padding=kernel // 2,
        dtype=dtype, epilogue=EpilogueSpec(norm=norm, activation=activation),
    )
