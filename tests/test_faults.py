"""Fault-tolerance suite: deterministic fault injection, failover, retries,
hedging, circuit breaking, and chaos replay.

Covers the acceptance criteria of the fault-tolerant serving PR:

* **fault plans** — validated, time-ordered schedules whose JSONL round
  trip is byte-identical (equality checked by hypothesis), plus a seeded
  MTBF/MTTR chaos generator;
* **retry machinery** — bounded deterministic-jitter backoff, per-worker
  circuit breakers, percentile-based hedge delays;
* **failover plumbing** — health-aware routing, forced worker removal that
  requeues instead of refusing, cache clear/adopt/rewarm, lost-capacity
  autoscaling;
* **chaos replay** — the pinned 1-of-4-workers-crash scenario is
  replay-twice byte-identical, loses zero accepted requests, and reports
  availability/attainment inside asserted bounds; retries + failover beat
  the no-retry baseline on the same seeded stream; the no-fault path stays
  bit-identical to the pre-refactor harness (pinned float).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import register_tiny_zoo
from repro.core.dtypes import DType
from repro.errors import PlanError
from repro.gpu.specs import GTX1660
from repro.serve import (
    FAULT_KINDS,
    WORKER_HEALTH,
    AutoscalePolicy,
    CircuitBreaker,
    FakeClock,
    FaultEvent,
    FaultPlan,
    Fleet,
    ModelServer,
    PlanCache,
    RetryPolicy,
    fleet_replay,
    hedge_delay,
    percentile,
)


@pytest.fixture(autouse=True)
def tiny_zoo(monkeypatch):
    register_tiny_zoo(monkeypatch)


def _server(**kw) -> ModelServer:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    server = ModelServer(GTX1660, **kw)
    server.test_clock = clock
    return server


def _fleet(n=2, **kw) -> Fleet:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    fleet = Fleet([GTX1660] * n, **kw)
    fleet.test_clock = clock
    return fleet


# The pinned acceptance scenario: 4 workers, worker #1 crashes mid-stream
# (t = 4us of a 23us arrival window) and recovers well before the stream
# ends (MTTR 8us < 23us).
CHAOS_PLAN = FaultPlan(
    (
        FaultEvent(t=4e-6, worker=1, kind="crash"),
        FaultEvent(t=12e-6, worker=1, kind="recover"),
    )
)
CHAOS_RETRY = RetryPolicy(max_attempts=3, budget=0.5)


def _chaos_replay(**overrides):
    kw = dict(
        max_batch=4,
        seed=1,
        slo_s=5e-3,
        faults=CHAOS_PLAN,
        retry=CHAOS_RETRY,
        probe_s=1e-6,
    )
    kw.update(overrides)
    return fleet_replay([GTX1660] * 4, ["tiny_a", "tiny_b"], 24, 1e6, **kw)


class TestFaultPlanValidation:
    def test_vocabularies(self):
        assert FAULT_KINDS == ("crash", "slowdown", "transient", "recover")
        assert WORKER_HEALTH == ("healthy", "degraded", "down", "recovering")

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown kind"):
            FaultPlan((FaultEvent(t=0.0, worker=0, kind="meteor"),))

    def test_negative_time_rejected(self):
        with pytest.raises(PlanError, match="negative timestamp"):
            FaultPlan((FaultEvent(t=-1e-6, worker=0, kind="crash"),))

    def test_decreasing_times_rejected(self):
        with pytest.raises(PlanError, match="non-decreasing"):
            FaultPlan(
                (
                    FaultEvent(t=2e-6, worker=0, kind="crash"),
                    FaultEvent(t=1e-6, worker=0, kind="recover"),
                )
            )

    def test_negative_worker_rejected(self):
        with pytest.raises(PlanError, match="negative worker"):
            FaultPlan((FaultEvent(t=0.0, worker=-1, kind="crash"),))

    def test_slowdown_factor_below_one_rejected(self):
        with pytest.raises(PlanError, match="slowdown factor"):
            FaultPlan((FaultEvent(t=0.0, worker=0, kind="slowdown", factor=0.5),))

    def test_events_coerced_to_tuple(self):
        plan = FaultPlan([FaultEvent(t=0.0, worker=0, kind="crash")])
        assert isinstance(plan.events, tuple)
        assert len(plan) == 1

    def test_empty_plan_ok(self):
        assert len(FaultPlan(())) == 0

    def test_describe_mentions_kind_and_worker(self):
        text = CHAOS_PLAN.describe()
        assert "crash" in text and "worker#1" in text and "2 event(s)" in text


class TestFaultPlanJsonl:
    PLAN = FaultPlan(
        (
            FaultEvent(t=1e-6, worker=0, kind="slowdown", factor=2.5),
            FaultEvent(t=2e-6, worker=1, kind="crash"),
            FaultEvent(t=3e-6, worker=0, kind="recover"),
            FaultEvent(t=4e-6, worker=1, kind="recover"),
        )
    )

    def test_round_trip_equality(self, tmp_path):
        path = self.PLAN.save(tmp_path / "plan.jsonl")
        assert FaultPlan.load(path) == self.PLAN

    def test_rewrite_byte_identical(self, tmp_path):
        first = self.PLAN.save(tmp_path / "a.jsonl")
        second = FaultPlan.load(first).save(tmp_path / "b.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_factor_only_written_for_slowdown(self, tmp_path):
        path = self.PLAN.save(tmp_path / "plan.jsonl")
        lines = path.read_text().splitlines()
        assert "factor" in lines[0]
        assert all("factor" not in line for line in lines[1:])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PlanError, match="not found"):
            FaultPlan.load(tmp_path / "absent.jsonl")

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"t": 0.0, "worker":\n')
        with pytest.raises(PlanError, match="invalid JSON"):
            FaultPlan.load(bad)

    def test_non_object_line_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("[1, 2, 3]\n")
        with pytest.raises(PlanError, match="object per line"):
            FaultPlan.load(bad)

    def test_missing_field_raises(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"worker": 0, "kind": "crash"}\n')
        with pytest.raises(PlanError, match="bad fault record"):
            FaultPlan.load(bad)

    def test_blank_lines_ignored(self, tmp_path):
        path = self.PLAN.save(tmp_path / "plan.jsonl")
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert FaultPlan.load(path) == self.PLAN

    @settings(max_examples=30, deadline=None)
    @given(
        raw=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
                st.integers(min_value=0, max_value=7),
                st.sampled_from(FAULT_KINDS),
                st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
            ),
            max_size=16,
        )
    )
    def test_round_trip_property(self, raw, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("faults")
        # cumulative gaps keep the schedule time-ordered
        t = 0.0
        events = []
        for gap, worker, kind, factor in raw:
            t += gap
            events.append(FaultEvent(t=t, worker=worker, kind=kind, factor=factor))
        plan = FaultPlan(tuple(events))
        first = plan.save(tmp / "a.jsonl")
        parsed = FaultPlan.load(first)
        second = parsed.save(tmp / "b.jsonl")
        assert first.read_bytes() == second.read_bytes()
        # non-slowdown events do not persist their factor field
        expected = tuple(
            ev if ev.kind == "slowdown" else FaultEvent(ev.t, ev.worker, ev.kind)
            for ev in events
        )
        assert parsed.events == expected


class TestChaosGenerator:
    def test_seeded_reproducible(self):
        a = FaultPlan.chaos(4, 1e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=7)
        b = FaultPlan.chaos(4, 1e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=7)
        c = FaultPlan.chaos(4, 1e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=8)
        assert a == b
        assert a != c

    def test_alternates_crash_and_recover_per_worker(self):
        plan = FaultPlan.chaos(3, 1e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=0)
        assert len(plan) > 0
        for wid in range(3):
            kinds = [ev.kind for ev in plan.events if ev.worker == wid]
            assert kinds == ["crash", "recover"] * (len(kinds) // 2)

    def test_slowdown_mode(self):
        plan = FaultPlan.chaos(
            2, 1e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=0, slowdown_factor=3.0
        )
        faults = [ev for ev in plan.events if ev.kind != "recover"]
        assert faults and all(ev.kind == "slowdown" for ev in faults)
        assert all(ev.factor == 3.0 for ev in faults)

    def test_times_sorted(self):
        plan = FaultPlan.chaos(4, 2e-3, mtbf_s=1e-4, mttr_s=5e-5, seed=3)
        times = [ev.t for ev in plan.events]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(PlanError, match=">= 1 worker"):
            FaultPlan.chaos(0, 1e-3, mtbf_s=1e-4, mttr_s=1e-4)
        with pytest.raises(PlanError, match="positive duration"):
            FaultPlan.chaos(1, 0.0, mtbf_s=1e-4, mttr_s=1e-4)
        with pytest.raises(PlanError, match="positive duration"):
            FaultPlan.chaos(1, 1e-3, mtbf_s=0.0, mttr_s=1e-4)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(backoff_s=-1e-6),
            dict(backoff_factor=0.5),
            dict(jitter=1.5),
            dict(jitter=-0.1),
            dict(budget=-0.1),
            dict(hedge_delay_s=0.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PlanError):
            RetryPolicy(**kwargs)

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=1e-4, backoff_factor=2.0, jitter=0.5)
        for seq in (0, 1, 17):
            for k in (1, 2, 3):
                base = 1e-4 * 2.0 ** (k - 1)
                delay = policy.backoff(seq, k)
                assert delay == policy.backoff(seq, k)
                assert base <= delay <= base * 1.5

    def test_jitter_varies_with_request(self):
        policy = RetryPolicy(backoff_s=1e-4, jitter=0.5)
        delays = {policy.backoff(seq, 1) for seq in range(8)}
        assert len(delays) > 1

    def test_backoff_grows_across_attempts(self):
        # factor 2 with jitter <= 0.5 keeps successive attempts monotone
        policy = RetryPolicy(backoff_s=1e-4, backoff_factor=2.0, jitter=0.5)
        for seq in range(4):
            assert policy.backoff(seq, 1) < policy.backoff(seq, 2) < policy.backoff(seq, 3)

    def test_retry_index_is_one_based(self):
        with pytest.raises(PlanError, match="1-based"):
            RetryPolicy().backoff(0, 0)

    def test_describe(self):
        text = RetryPolicy(hedge_delay_s=2e-3).describe()
        assert "hedge after 2.000ms" in text
        assert "no hedging" in RetryPolicy().describe()


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        br = CircuitBreaker(threshold=3, reset_s=1e-3)
        assert not br.record_failure(0.0)
        assert not br.record_failure(0.0)
        assert br.record_failure(0.0)
        assert br.state == "open"
        assert not br.allows(1e-4)

    def test_half_open_after_reset(self):
        br = CircuitBreaker(threshold=1, reset_s=1e-3)
        assert br.record_failure(0.0)
        assert br.allows(2e-3)
        assert br.state == "half_open"

    def test_half_open_failure_reopens_immediately(self):
        br = CircuitBreaker(threshold=3, reset_s=1e-3)
        for _ in range(3):
            br.record_failure(0.0)
        br.allows(2e-3)
        assert br.record_failure(2e-3)
        assert br.trips == 2

    def test_success_closes_and_resets(self):
        br = CircuitBreaker(threshold=2, reset_s=1e-3)
        br.record_failure(0.0)
        br.record_success()
        assert br.state == "closed"
        assert not br.record_failure(0.0)  # count restarted from zero

    def test_validation(self):
        with pytest.raises(PlanError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(PlanError, match="reset_s"):
            CircuitBreaker(reset_s=0.0)

    def test_describe(self):
        assert "closed" in CircuitBreaker().describe()


class TestHedgeDelay:
    SAMPLES = [1e-3, 2e-3, 3e-3, 4e-3, 100e-3]

    def test_matches_percentile(self):
        assert hedge_delay(self.SAMPLES) == percentile(self.SAMPLES, 99.0)
        assert hedge_delay(self.SAMPLES, 50.0) == percentile(self.SAMPLES, 50.0)

    def test_multiplier(self):
        assert hedge_delay(self.SAMPLES, 50.0, multiplier=2.0) == pytest.approx(
            2.0 * percentile(self.SAMPLES, 50.0)
        )

    def test_bad_multiplier_raises(self):
        with pytest.raises(PlanError):
            hedge_delay(self.SAMPLES, multiplier=0.0)


class TestServerDrainCancel:
    def test_cancel_removes_queued_request(self):
        server = _server(max_batch=4)
        rid = server.enqueue("tiny_a")
        server.enqueue("tiny_a")
        assert server.cancel(rid)
        assert server.pending() == 1

    def test_cancel_unknown_returns_false(self):
        server = _server(max_batch=4)
        assert not server.cancel(12345)
        rid = server.enqueue("tiny_a")
        assert server.cancel(rid)
        assert not server.cancel(rid)

    def test_drain_returns_all_and_empties(self):
        server = _server(max_batch=4)
        ids = [server.enqueue("tiny_a"), server.enqueue("tiny_b"), server.enqueue("tiny_a")]
        drained = server.drain()
        assert sorted(r.id for r in drained) == sorted(ids)
        assert server.pending() == 0
        assert server.drain() == []


class TestCacheResilience:
    def test_clear_drops_entries_keeps_stats(self):
        cache = PlanCache()
        cache.get("tiny_a", DType.FP32, GTX1660)
        misses = cache.stats.misses
        assert cache.clear() == 1
        assert list(cache.keys()) == []
        assert cache.stats.misses == misses
        cache.get("tiny_a", DType.FP32, GTX1660)
        assert cache.stats.misses == misses + 1  # cleared plans rebuild on miss

    def test_adopt_shares_entry_and_counts_warm_start(self):
        donor, taker = PlanCache(), PlanCache()
        donor.get("tiny_a", DType.FP32, GTX1660)
        key = next(iter(donor.keys()))
        entry = donor.peek(key)
        adopted = taker.adopt(entry)
        assert adopted is entry  # shared object, not a rebuild
        assert taker.stats.warm_starts == 1
        assert taker.stats.misses == 0
        # adopting a resident plan is a no-op
        taker.adopt(entry)
        assert taker.stats.warm_starts == 1

    def test_rewarm_adopts_same_gpu_peers(self):
        fleet = _fleet(2)
        fleet.workers[0].server.cache.get("tiny_a", DType.FP32, GTX1660)
        fleet.workers[0].server.cache.get("tiny_b", DType.FP32, GTX1660)
        fleet.workers[1].server.cache.clear()
        assert fleet.rewarm(fleet.workers[1]) == 2
        assert fleet.workers[1].server.cache.stats.warm_starts == 2
        assert fleet.rewarm(fleet.workers[1]) == 0  # already resident


class TestForcedRemoval:
    def test_busy_removal_without_force_still_raises(self):
        fleet = _fleet(2)
        fleet.workers[0].server.enqueue("tiny_a")
        with pytest.raises(PlanError, match="busy worker"):
            fleet.remove_worker(fleet.workers[0])

    def test_force_removal_requeues_and_refunds(self):
        fleet = _fleet(2)
        victim = fleet.workers[0]
        victim.server.enqueue("tiny_a")
        victim.server.enqueue("tiny_b")
        victim.busy_until = 5e-4  # still executing a batch at t=0
        victim.busy_s = 1e-3
        drained = fleet.remove_worker(victim, force=True)
        assert [r.model for r in drained] == ["tiny_a", "tiny_b"]
        assert victim not in fleet.workers
        assert victim in fleet.retired
        assert victim.busy_until == 0.0
        assert victim.busy_s == pytest.approx(5e-4)  # un-elapsed occupancy refunded
        # survivors pick the drained work back up
        for req in drained:
            fleet.workers[0].server.enqueue(req.model)
        assert fleet.pending() == 2

    def test_retired_worker_stays_in_stats(self):
        fleet = _fleet(2)
        victim = fleet.workers[0]
        victim.server.enqueue("tiny_a")
        fleet.remove_worker(victim, force=True)
        assert victim.name in {w.worker for w in fleet.stats().per_worker}


class TestHealthRouting:
    @pytest.mark.parametrize("policy", ["affinity", "round_robin"])
    def test_down_worker_skipped(self, policy):
        fleet = _fleet(2, policy=policy)
        fleet.workers[0].health = "down"
        for _ in range(3):
            worker = fleet.scheduler.route("tiny_a", DType.FP32, 0.0)
            assert worker is fleet.workers[1]

    def test_degraded_worker_still_routable(self):
        fleet = _fleet(1)
        fleet.workers[0].health = "degraded"
        assert fleet.workers[0].routable(0.0)

    def test_all_down_route_none_and_enqueue_raises(self):
        fleet = _fleet(2)
        for worker in fleet.workers:
            worker.health = "down"
        assert fleet.scheduler.route("tiny_a", DType.FP32, 0.0) is None
        with pytest.raises(PlanError, match="fleet is down"):
            fleet.enqueue("tiny_a")

    def test_exclude_set_honoured(self):
        fleet = _fleet(2)
        keep_out = frozenset({fleet.workers[0].worker_id})
        worker = fleet.scheduler.route("tiny_a", DType.FP32, 0.0, exclude=keep_out)
        assert worker is fleet.workers[1]

    def test_open_breaker_blocks_routing_until_reset(self):
        fleet = _fleet(2)
        first = fleet.workers[0]
        first.breaker = CircuitBreaker(threshold=1, reset_s=1e-3)
        first.breaker.record_failure(0.0)
        assert not first.routable(1e-4)
        assert fleet.scheduler.route("tiny_a", DType.FP32, 1e-4) is fleet.workers[1]
        assert first.routable(2e-3)  # half-open probe after reset_s


class TestLostCapacityAutoscale:
    def test_grows_when_capacity_lost(self):
        fleet = _fleet(2)
        scaler = AutoscalePolicy(min_workers=2, max_workers=4).bind(fleet)
        fleet.workers[0].health = "down"
        event = scaler.observe(0.0)
        assert event is not None
        assert event.action == "grow"
        assert event.reason == "lost_capacity"
        assert len(fleet.workers) == 3

    def test_no_growth_when_nobody_is_down(self):
        # booting below min_workers alone must NOT trigger the lost-capacity
        # path -- that would change no-fault replays (bit-identity guard).
        fleet = _fleet(1)
        scaler = AutoscalePolicy(min_workers=2, max_workers=4).bind(fleet)
        assert scaler.observe(0.0) is None
        assert len(fleet.workers) == 1


class TestChaosReplay:
    def test_no_fault_path_bit_identical(self):
        # pinned pre-refactor float: the fault machinery must stay fully
        # disarmed when neither faults nor retry are passed
        report = fleet_replay([GTX1660] * 2, ["tiny_a", "tiny_b"], 24, 1e6, max_batch=4, seed=1)
        assert report.throughput_img_s == 11765.578254498812
        assert report.fault_stats is None
        assert report.availability == 1.0

    def test_armed_but_quiet_injector_matches_no_fault_path(self):
        # retry armed with an empty fault plan: the deferred-commit ledger
        # must reproduce the inline path's arithmetic exactly
        base = fleet_replay([GTX1660] * 2, ["tiny_a", "tiny_b"], 24, 1e6, max_batch=4, seed=1)
        armed = fleet_replay(
            [GTX1660] * 2,
            ["tiny_a", "tiny_b"],
            24,
            1e6,
            max_batch=4,
            seed=1,
            retry=RetryPolicy(),
        )
        assert armed.latencies_s == base.latencies_s
        assert armed.throughput_img_s == base.throughput_img_s
        assert [w.busy_s for w in armed.per_worker] == [w.busy_s for w in base.per_worker]
        stats = armed.fault_stats
        assert stats is not None
        assert (stats.crashes, stats.retries, stats.lost) == (0, 0, 0)
        assert stats.availability == 1.0

    def test_pinned_chaos_replay(self):
        """Acceptance: 1 of 4 workers crashes mid-stream, recovers before the
        stream ends; replay-twice byte-identical, zero lost requests."""
        first = _chaos_replay()
        second = _chaos_replay()
        assert first == second
        assert first.describe() == second.describe()
        stats = first.fault_stats
        assert stats.crashes == 1
        assert stats.recoveries == 1
        assert stats.lost == 0
        assert stats.requeues >= 1  # the crashed worker's queue moved to survivors
        assert len(first.latencies_s) == 24  # every accepted request served
        assert 0.5 < stats.availability < 1.0
        assert first.attained == 24  # SLO attainment survives the crash
        downtime = dict(stats.downtime_s)
        assert downtime[first.per_worker[1].worker] > 0.0

    def test_retries_and_failover_beat_no_retry_baseline(self):
        # worker 0 drops its first two batches; without retries those
        # requests are simply lost
        plan = FaultPlan(
            (
                FaultEvent(t=0.0, worker=0, kind="transient"),
                FaultEvent(t=0.0, worker=0, kind="transient"),
            )
        )
        kw = dict(max_batch=4, seed=1, slo_s=5e-3)
        baseline = fleet_replay([GTX1660] * 2, ["tiny_a"], 16, 1e6, faults=plan, **kw)
        retried = fleet_replay(
            [GTX1660] * 2,
            ["tiny_a"],
            16,
            1e6,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, budget=1.0),
            **kw,
        )
        assert baseline.fault_stats.lost > 0
        assert retried.fault_stats.lost == 0
        assert len(retried.latencies_s) == 16
        assert retried.attained > baseline.attained
        assert retried.fault_stats.retries > 0

    def test_retry_budget_denial(self):
        plan = FaultPlan((FaultEvent(t=0.0, worker=0, kind="transient"),))
        report = fleet_replay(
            [GTX1660] * 2,
            ["tiny_a"],
            16,
            1e6,
            max_batch=4,
            seed=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, budget=0.0),
        )
        stats = report.fault_stats
        assert stats.retries == 0
        assert stats.budget_denied > 0
        assert stats.lost > 0

    def test_breaker_trips_recorded(self):
        plan = FaultPlan((FaultEvent(t=0.0, worker=0, kind="transient"),))
        report = fleet_replay(
            [GTX1660] * 2,
            ["tiny_a"],
            16,
            1e6,
            max_batch=4,
            seed=1,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, budget=1.0),
            breaker_threshold=1,
        )
        assert report.fault_stats.transients == 1
        assert report.fault_stats.breaker_trips >= 1
        assert report.fault_stats.lost == 0

    def test_slowdown_stretches_execution(self):
        plan = FaultPlan((FaultEvent(t=0.0, worker=0, kind="slowdown", factor=8.0),))
        base = fleet_replay([GTX1660], ["tiny_a"], 16, 1e6, max_batch=4, seed=1)
        slow = fleet_replay([GTX1660], ["tiny_a"], 16, 1e6, max_batch=4, seed=1, faults=plan)
        assert slow.fault_stats.slowdowns == 1
        assert slow.throughput_img_s < base.throughput_img_s
        assert slow.fault_stats.availability == 1.0  # degraded, never down

    def test_recovery_rewarms_plan_cache(self):
        fleet = _fleet(4, max_batch=4)
        report = _chaos_replay(fleet=fleet, max_batch=4)
        assert report.fault_stats.recoveries == 1
        # the crash wiped worker #1's plans; recovery adopted them back from
        # same-GPU peers instead of re-planning on the critical path
        assert fleet.workers[1].server.cache.stats.warm_starts >= 1

    def test_hedging_accounting_is_consistent(self):
        plan = FaultPlan((FaultEvent(t=0.0, worker=0, kind="slowdown", factor=50.0),))
        kw = dict(
            max_batch=8,
            seed=1,
            slo_s=5e-3,
            faults=plan,
            retry=RetryPolicy(max_attempts=2, budget=1.0, hedge_delay_s=5e-6),
        )
        first = fleet_replay([GTX1660] * 2, ["tiny_a"], 8, 1e6, **kw)
        second = fleet_replay([GTX1660] * 2, ["tiny_a"], 8, 1e6, **kw)
        assert first == second
        stats = first.fault_stats
        assert stats.hedges > 0
        assert len(first.latencies_s) == 8  # first-wins: no double commits
        assert stats.hedges_won <= stats.hedges
        # every hedged request has exactly one losing copy: settled-late
        # (wasted) or yanked from a queue on first-wins (cancelled)
        assert stats.hedges_wasted + stats.hedges_cancelled == stats.hedges
        assert stats.lost == 0

    def test_autoscaled_chaos_replay_deterministic(self):
        plan = FaultPlan(
            (
                FaultEvent(t=5e-6, worker=0, kind="crash"),
                FaultEvent(t=15e-6, worker=0, kind="recover"),
            )
        )
        kw = dict(
            max_batch=4,
            seed=1,
            slo_s=5e-3,
            faults=plan,
            retry=CHAOS_RETRY,
            probe_s=1e-6,
            autoscale=AutoscalePolicy(min_workers=2, max_workers=4),
        )
        first = fleet_replay([GTX1660] * 2, ["tiny_a", "tiny_b"], 32, 1e6, **kw)
        second = fleet_replay([GTX1660] * 2, ["tiny_a", "tiny_b"], 32, 1e6, **kw)
        assert first == second
        assert any(ev.reason == "lost_capacity" for ev in first.scale_events)
        assert first.fault_stats.lost == 0

    def test_total_outage_parks_then_loses(self):
        plan = FaultPlan(
            (
                FaultEvent(t=1e-7, worker=0, kind="crash"),
                FaultEvent(t=1e-7, worker=1, kind="crash"),
            )
        )
        report = fleet_replay(
            [GTX1660] * 2, ["tiny_a"], 8, 1e6, max_batch=4, seed=1, faults=plan
        )
        stats = report.fault_stats
        assert stats.lost == 8
        assert report.latencies_s == []
        assert math.isnan(report.latency_p50_s)
        assert stats.availability < 0.1

    def test_parked_requests_served_after_recovery(self):
        plan = FaultPlan(
            (
                FaultEvent(t=1e-7, worker=0, kind="crash"),
                FaultEvent(t=1e-7, worker=1, kind="crash"),
                FaultEvent(t=10e-6, worker=0, kind="recover"),
            )
        )
        report = fleet_replay(
            [GTX1660] * 2,
            ["tiny_a"],
            8,
            1e6,
            max_batch=4,
            seed=1,
            faults=plan,
            probe_s=1e-6,
        )
        assert report.fault_stats.lost == 0
        assert len(report.latencies_s) == 8

    def test_fault_stats_in_describe(self):
        report = _chaos_replay()
        text = report.describe()
        assert "availability" in text
        assert "1 crash" in text
