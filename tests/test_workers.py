"""Process-pool determinism guards: tune sweeps and fleet preplanning.

The contract is that worker count is an *execution* knob, never a *result*
knob: `tune_models(workers=N)` merges child DBs in submission order into
byte-identical canonical JSONL for every N, and `fleet_replay(workers=N)`
preplans the same bit-identical plans the serial path would build — only
boot wall-clock (and where planning is accounted: warm starts, off the
critical path) changes.
"""

from __future__ import annotations

import pytest

from helpers import TINY_ZOO, register_tiny_zoo
from repro.core.dtypes import DType
from repro.errors import PlanError, TuneError
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.serve.cache import PlanCache, PlanKey
from repro.serve.fleet import Fleet
from repro.serve.loadgen import FakeClock, fleet_replay
from repro.tune.measure import tune_models

GPUS = [GTX1660, RTX_A4000]
MODELS = ["mobilenet_v1", "mobilenet_v2"]


class TestTuneWorkers:
    def test_workers_must_be_positive(self):
        with pytest.raises(TuneError):
            tune_models(MODELS, GPUS, workers=0)

    def test_parallel_db_is_byte_identical_to_serial(self):
        db1, mm1 = tune_models(MODELS, GPUS, mode="guided", iterations=4)
        db2, mm2 = tune_models(MODELS, GPUS, mode="guided", iterations=4,
                               workers=2)
        assert db1.dumps() == db2.dumps()
        # Summaries too: same sweep order, same per-task records_added.
        assert mm1 == mm2

    def test_parallel_merge_into_existing_db(self):
        # Pre-populate, then sweep in parallel: merge must keep the
        # best-record-per-key rule, same as the serial accumulate path.
        db_serial, _ = tune_models(MODELS, GPUS, mode="guided", iterations=2)
        db_pre, _ = tune_models([MODELS[0]], [GPUS[0]], mode="guided",
                                iterations=2)
        db_merged, _ = tune_models(MODELS, GPUS, mode="guided", iterations=2,
                                   db=db_pre, workers=2)
        assert db_merged.dumps() == db_serial.dumps()

    def test_single_job_short_circuits_the_pool(self):
        # One task: no pool spin-up, still the same DB shape.
        db_a, _ = tune_models([MODELS[0]], [GPUS[0]], iterations=2, workers=4)
        db_b, _ = tune_models([MODELS[0]], [GPUS[0]], iterations=2, workers=1)
        assert db_a.dumps() == db_b.dumps()


class TestPlanCacheInstall:
    def test_install_counts_warm_start_not_miss(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        model = TINY_ZOO[0][0]
        donor = PlanCache()
        plan = donor.get(model, DType.FP32, GTX1660).plan
        cache = PlanCache()
        entry = cache.install(model, DType.FP32, GTX1660, plan=plan)
        assert entry.plan is plan
        assert cache.stats.warm_starts == 1
        assert cache.stats.misses == 0 and cache.stats.planner_invocations == 0
        # The next get() is a hit, not a rebuild.
        assert cache.get(model, DType.FP32, GTX1660) is entry
        assert cache.stats.hits == 1

    def test_install_never_clobbers_resident_entry(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        model = TINY_ZOO[0][0]
        cache = PlanCache()
        live = cache.get(model, DType.FP32, GTX1660)
        again = cache.install(model, DType.FP32, GTX1660, plan=live.plan)
        assert again is live
        assert cache.stats.warm_starts == 0  # no-op install


class TestFleetPreplan:
    def _fleet(self, gpus):
        clock = FakeClock()
        return Fleet(gpus, clock=clock, sleep=clock.sleep)

    def test_workers_must_be_positive(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        with pytest.raises(PlanError):
            self._fleet([GTX1660]).preplan([TINY_ZOO[0][0]], workers=0)

    def test_preplan_installs_per_worker_plans(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        models = [name for name, _ in TINY_ZOO[:2]]
        fleet = self._fleet([GTX1660, RTX_A4000])
        installed = fleet.preplan(models)
        assert installed == 4  # 2 workers x 2 models x 1 dtype
        stats = fleet.stats()
        assert stats.warm_starts == 4
        assert stats.planner_invocations == 0  # planning happened via install
        for w in fleet.workers:
            for m in models:
                assert w.holds_plan(m, DType.FP32)

    def test_homogeneous_fleet_plans_each_identity_once(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        model = TINY_ZOO[0][0]
        fleet = self._fleet([GTX1660, GTX1660, GTX1660])
        installed = fleet.preplan([model])
        assert installed == 3  # one planning job, three installs
        plans = [
            w.server.cache.peek(w.plan_key(model, DType.FP32)).plan
            for w in fleet.workers
        ]
        assert plans[0] is plans[1] is plans[2]  # literally the same object

    def test_preplanned_plans_match_lazy_plans(self, monkeypatch):
        register_tiny_zoo(monkeypatch)
        model = TINY_ZOO[1][0]
        pre = self._fleet([RTX_A4000])
        pre.preplan([model])
        lazy = self._fleet([RTX_A4000])
        key = PlanKey.of(model, DType.FP32, RTX_A4000, "paper", 2)
        assert (
            pre.workers[0].server.cache.peek(key).plan.steps
            == lazy.workers[0].server.cache.get(model, DType.FP32, RTX_A4000).plan.steps
        )


class TestFleetReplayWorkers:
    def test_workers_must_be_positive(self):
        with pytest.raises(PlanError):
            fleet_replay(GPUS, MODELS, 8, 1e6, workers=0)

    def test_preplanned_replay_keeps_planning_off_critical_path(self):
        serial = fleet_replay(GPUS, MODELS, 16, 1e6, seed=5)
        pooled = fleet_replay(GPUS, MODELS, 16, 1e6, seed=5, workers=2)
        assert serial.critical_path_planner_invocations > 0
        assert pooled.critical_path_planner_invocations == 0
        assert pooled.warm_starts == len(GPUS) * len(MODELS)
        assert pooled.n_requests == serial.n_requests == 16

    def test_report_is_identical_for_every_pool_size(self):
        r2 = fleet_replay(GPUS, MODELS, 16, 1e6, seed=5, workers=2)
        r3 = fleet_replay(GPUS, MODELS, 16, 1e6, seed=5, workers=3)
        assert r2 == r3
