"""Tests for tiling math including the paper's Eq. 1 overlap model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tiling import (
    DwTiling,
    PwTiling,
    ceil_div,
    input_extent,
    overlap_elements,
    tile_input_range,
)
from repro.errors import ShapeError


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(10, 5, 2), (11, 5, 3), (1, 5, 1), (0, 5, 0), (49, 4, 13)]
    )
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_invalid(self):
        with pytest.raises(ShapeError):
            ceil_div(5, 0)


class TestOverlapEq1:
    def test_no_overlap_for_pointwise(self):
        # 1x1 filter, stride 1: neighbouring windows never overlap.
        assert overlap_elements(56, 56, 8, 8, 1, 1, 1) == 0

    def test_no_overlap_single_tile(self):
        assert overlap_elements(14, 14, 14, 14, 3, 3, 1) == 0

    def test_hand_computed(self):
        # W=8,H=8, tiles 4x4, 3x3 filter stride 1:
        # (ceil(8/4)-1)*(3-1)*8 twice = 16 + 16.
        assert overlap_elements(8, 8, 4, 4, 3, 3, 1) == 32

    def test_stride_reduces_overlap(self):
        o1 = overlap_elements(16, 16, 4, 4, 3, 3, 1)
        o2 = overlap_elements(16, 16, 4, 4, 3, 3, 2)
        assert o2 < o1

    def test_stride_equal_kernel_no_overlap(self):
        assert overlap_elements(16, 16, 4, 4, 2, 2, 2) == 0

    def test_invalid(self):
        with pytest.raises(ShapeError):
            overlap_elements(0, 8, 4, 4, 3, 3, 1)


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(4, 64),
    tile=st.integers(1, 64),
    k=st.integers(1, 5),
    stride=st.integers(1, 3),
)
def test_overlap_nonnegative_and_monotone_in_tiles(size, tile, k, stride):
    """Eq. 1 is >= 0 and never increases when tiles get larger."""
    o = overlap_elements(size, size, tile, tile, k, k, stride)
    assert o >= 0
    o_bigger = overlap_elements(size, size, min(tile * 2, size), min(tile * 2, size),
                                k, k, stride)
    assert o_bigger <= o


class TestInputExtent:
    @pytest.mark.parametrize(
        "out,k,s,expected", [(4, 3, 1, 6), (4, 3, 2, 9), (1, 5, 1, 5), (7, 1, 1, 7)]
    )
    def test_values(self, out, k, s, expected):
        assert input_extent(out, k, s) == expected


class TestTileInputRange:
    def test_interior_tile(self):
        # Output rows 4..7 with k=3, pad=1 read input rows 3..8 inclusive.
        lo, hi = tile_input_range(4, 4, 3, 1, 1, 100)
        assert (lo, hi) == (3, 9)

    def test_border_clamps(self):
        lo, hi = tile_input_range(0, 4, 3, 1, 1, 100)
        assert lo == 0  # padding row never loaded
        lo, hi = tile_input_range(96, 4, 3, 1, 1, 100)
        assert hi == 100

    def test_covers_all_outputs(self):
        """Union of tile ranges covers every input the conv reads."""
        out, k, s, pad, in_size = 14, 3, 1, 1, 14
        covered = set()
        for t0 in range(0, out, 4):
            lo, hi = tile_input_range(t0, min(4, out - t0), k, s, pad, in_size)
            covered.update(range(lo, hi))
        assert covered == set(range(in_size))


class TestTilingDataclasses:
    def test_pw_counts(self):
        t = PwTiling(tile_m=16, tile_hw=64)
        assert t.num_filter_tiles(64) == 4
        assert t.num_spatial_tiles(100) == 2
        assert t.num_ofm_tiles(64, 100) == 8

    def test_dw_counts(self):
        t = DwTiling(tile_c=8, tile_h=7, tile_w=7)
        assert t.num_channel_tiles(32) == 4
        assert t.num_spatial_tiles(14, 14) == 4
        assert t.num_ofm_tiles(32, 14, 14) == 16

    def test_validation(self):
        with pytest.raises(ShapeError):
            PwTiling(0, 32)
        with pytest.raises(ShapeError):
            DwTiling(8, -1, 4)
