"""Unit + property tests for the reference convolution operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import (
    ACTIVATIONS,
    apply_activation,
    apply_norm,
    conv2d_depthwise,
    conv2d_pointwise,
    conv2d_standard,
    fold_batchnorm,
    out_dim,
)
from repro.errors import ShapeError


class TestOutDim:
    def test_basic(self):
        assert out_dim(112, 3, 2, 1) == 56
        assert out_dim(224, 3, 2, 1) == 112
        assert out_dim(14, 3, 1, 1) == 14
        assert out_dim(299, 3, 2, 0) == 149

    def test_kernel_one(self):
        assert out_dim(10, 1, 1, 0) == 10
        assert out_dim(10, 1, 2, 0) == 5

    def test_invalid(self):
        with pytest.raises(ShapeError):
            out_dim(0, 3, 1, 1)
        with pytest.raises(ShapeError):
            out_dim(10, 3, 0, 1)
        with pytest.raises(ShapeError):
            out_dim(2, 5, 1, 0)


class TestStandardConv:
    def test_identity_filter(self, rng):
        x = rng.standard_normal((3, 6, 6)).astype(np.float32)
        w = np.zeros((3, 3, 1, 1), dtype=np.float32)
        for i in range(3):
            w[i, i, 0, 0] = 1.0
        np.testing.assert_allclose(conv2d_standard(x, w), x, rtol=1e-6)

    def test_matches_manual_small(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        y = conv2d_standard(x, w)
        assert y.shape == (1, 3, 3)
        assert y[0, 0, 0] == x[0, 0, 0] + x[0, 0, 1] + x[0, 1, 0] + x[0, 1, 1]

    def test_stride_and_padding_shape(self, rng):
        x = rng.standard_normal((2, 9, 9)).astype(np.float32)
        w = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        assert conv2d_standard(x, w, stride=2, padding=1).shape == (4, 5, 5)

    def test_int_accumulates_int32(self, rng):
        x = rng.integers(-128, 128, (2, 5, 5)).astype(np.int8)
        w = rng.integers(-128, 128, (3, 2, 3, 3)).astype(np.int8)
        y = conv2d_standard(x, w, padding=1)
        assert y.dtype == np.int32

    def test_channel_mismatch(self, rng):
        x = rng.standard_normal((2, 5, 5)).astype(np.float32)
        w = rng.standard_normal((3, 4, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d_standard(x, w)


class TestDepthwiseConv:
    def test_equals_grouped_standard(self, rng):
        """DW == a standard conv with a block-diagonal filter bank."""
        c, h, w = 4, 8, 8
        x = rng.standard_normal((c, h, w)).astype(np.float32)
        wd = rng.standard_normal((c, 3, 3)).astype(np.float32)
        ws = np.zeros((c, c, 3, 3), dtype=np.float32)
        for i in range(c):
            ws[i, i] = wd[i]
        np.testing.assert_allclose(
            conv2d_depthwise(x, wd, padding=1),
            conv2d_standard(x, ws, padding=1),
            rtol=1e-5,
        )

    def test_stride2(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        wd = rng.standard_normal((3, 3, 3)).astype(np.float32)
        assert conv2d_depthwise(x, wd, stride=2, padding=1).shape == (3, 4, 4)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ShapeError):
            conv2d_depthwise(
                rng.standard_normal((3, 5, 5)).astype(np.float32),
                rng.standard_normal((4, 3, 3)).astype(np.float32),
            )


class TestPointwiseConv:
    def test_equals_standard_1x1(self, rng):
        x = rng.standard_normal((5, 7, 7)).astype(np.float32)
        w = rng.standard_normal((8, 5)).astype(np.float32)
        np.testing.assert_allclose(
            conv2d_pointwise(x, w),
            conv2d_standard(x, w.reshape(8, 5, 1, 1)),
            rtol=1e-5,
        )

    def test_stride_subsamples(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((2, 3)).astype(np.float32)
        y = conv2d_pointwise(x, w, stride=2)
        assert y.shape == (2, 4, 4)
        np.testing.assert_allclose(y, conv2d_pointwise(x[:, ::2, ::2], w), rtol=1e-6)


class TestEpilogueOps:
    def test_fold_batchnorm_matches_direct(self, rng):
        c = 6
        x = rng.standard_normal((c, 4, 4)).astype(np.float32)
        gamma = rng.uniform(0.5, 2, c).astype(np.float32)
        beta = rng.uniform(-1, 1, c).astype(np.float32)
        mean = rng.uniform(-1, 1, c).astype(np.float32)
        var = rng.uniform(0.1, 2, c).astype(np.float32)
        scale, shift = fold_batchnorm(gamma, beta, mean, var, eps=1e-5)
        direct = gamma[:, None, None] * (x - mean[:, None, None]) / np.sqrt(
            var[:, None, None] + 1e-5
        ) + beta[:, None, None]
        np.testing.assert_allclose(apply_norm(x, scale, shift), direct, rtol=1e-4)

    def test_activations_pointwise_props(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        assert (apply_activation(x, "relu") >= 0).all()
        assert (apply_activation(x, "relu6") <= 6).all()
        np.testing.assert_array_equal(apply_activation(x, None), x)
        np.testing.assert_array_equal(apply_activation(x, "identity"), x)

    def test_unknown_activation(self):
        with pytest.raises(ShapeError):
            apply_activation(np.zeros(3), "swishh")

    def test_registry_complete(self):
        for name in ("relu", "relu6", "hswish", "gelu", "identity", None):
            assert name in ACTIVATIONS


@settings(max_examples=25, deadline=None)
@given(
    c=st.integers(1, 6),
    m=st.integers(1, 8),
    h=st.integers(3, 10),
    w=st.integers(3, 10),
    k=st.sampled_from([1, 3, 5]),
    stride=st.integers(1, 2),
)
def test_conv_linearity_property(c, m, h, w, k, stride):
    """Convolution is linear: conv(a*x + b*y) == a*conv(x) + b*conv(y)."""
    if h + 2 * (k // 2) < k or w + 2 * (k // 2) < k:
        return
    rng = np.random.default_rng(c * 1000 + m * 100 + h * 10 + w)
    pad = k // 2
    x = rng.standard_normal((c, h, w)).astype(np.float64)
    y = rng.standard_normal((c, h, w)).astype(np.float64)
    wt = rng.standard_normal((m, c, k, k)).astype(np.float64)
    lhs = conv2d_standard(2.0 * x + 3.0 * y, wt, stride, pad)
    rhs = 2.0 * conv2d_standard(x, wt, stride, pad) + 3.0 * conv2d_standard(
        y, wt, stride, pad
    )
    # conv2d_standard accumulates in fp32 for float inputs.
    np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(
    c=st.integers(1, 6),
    h=st.integers(4, 12),
    w=st.integers(4, 12),
    k=st.sampled_from([2, 3]),
    stride=st.integers(1, 2),
)
def test_depthwise_channel_independence(c, h, w, k, stride):
    """Each DW output channel depends only on its own input channel."""
    rng = np.random.default_rng(c + h * 7 + w * 13 + k)
    x = rng.standard_normal((c, h, w)).astype(np.float32)
    wt = rng.standard_normal((c, k, k)).astype(np.float32)
    base = conv2d_depthwise(x, wt, stride, k // 2)
    x2 = x.copy()
    x2[0] += 100.0  # perturb channel 0 only
    pert = conv2d_depthwise(x2, wt, stride, k // 2)
    np.testing.assert_allclose(base[1:], pert[1:], rtol=1e-5)
    assert not np.allclose(base[0], pert[0])
