"""Tests for INT8 quantization and the dp4a emulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantize import (
    QuantParams,
    choose_scale,
    dequantize,
    dp4a_dot,
    pack_int8x4,
    quantize,
    requantize,
    unpack_int8x4,
)
from repro.errors import ShapeError


class TestScaleSelection:
    def test_covers_range(self, rng):
        x = rng.standard_normal(1000).astype(np.float32) * 5
        q = quantize(x, choose_scale(x))
        assert q.min() >= -128 and q.max() <= 127
        # The extreme value must map near the int8 edge.
        assert max(abs(int(q.min())), int(q.max())) >= 126

    def test_zero_input(self):
        p = choose_scale(np.zeros(10, dtype=np.float32))
        assert p.scale == 1.0

    def test_invalid_scale(self):
        with pytest.raises(ShapeError):
            QuantParams(scale=0.0)
        with pytest.raises(ShapeError):
            QuantParams(scale=float("nan"))


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float32,
        st.integers(1, 64),
        elements=st.floats(-100, 100, width=32, allow_nan=False),
    )
)
def test_quantize_roundtrip_error_bound(x):
    """|dequant(quant(x)) - x| <= scale/2 elementwise (round-to-nearest)."""
    p = choose_scale(x)
    err = np.abs(dequantize(quantize(x, p), p) - x)
    assert (err <= p.scale / 2 + 1e-6).all()


class TestDp4a:
    def test_matches_float_dot(self, rng):
        a = rng.integers(-128, 128, (5, 16)).astype(np.int8)
        b = rng.integers(-128, 128, (5, 16)).astype(np.int8)
        got = dp4a_dot(a, b)
        want = (a.astype(np.int64) * b.astype(np.int64)).sum(axis=-1)
        np.testing.assert_array_equal(got.astype(np.int64), want)
        assert got.dtype == np.int32

    def test_rejects_non_int8(self, rng):
        with pytest.raises(ShapeError):
            dp4a_dot(np.ones(4, np.int32), np.ones(4, np.int8))


class TestPacking:
    def test_roundtrip(self, rng):
        x = rng.integers(-128, 128, (3, 8)).astype(np.int8)
        words = pack_int8x4(x)
        assert words.dtype == np.int32
        assert words.size == x.size // 4
        np.testing.assert_array_equal(unpack_int8x4(words, x.shape), x)

    def test_requires_multiple_of_four(self):
        with pytest.raises(ShapeError):
            pack_int8x4(np.zeros(6, np.int8))

    def test_unpack_shape_check(self):
        with pytest.raises(ShapeError):
            unpack_int8x4(np.zeros(2, np.int32), (3, 3))


class TestRequantize:
    def test_identity_scales(self):
        acc = np.array([[10, -20], [127, -128]], dtype=np.int32)
        unit = QuantParams(1.0)
        np.testing.assert_array_equal(
            requantize(acc, unit, unit, unit), np.clip(acc, -128, 127).astype(np.int8)
        )

    def test_matches_float_pipeline(self, rng):
        inp, w, out = QuantParams(0.02), QuantParams(0.005), QuantParams(0.1)
        acc = rng.integers(-(2**20), 2**20, 100).astype(np.int32)
        got = requantize(acc, inp, w, out)
        want = np.clip(
            np.rint(acc.astype(np.float64) * inp.scale * w.scale / out.scale),
            -128, 127,
        ).astype(np.int8)
        np.testing.assert_array_equal(got, want)

    def test_rejects_float_acc(self):
        with pytest.raises(ShapeError):
            requantize(np.zeros(3, np.float32), QuantParams(1), QuantParams(1), QuantParams(1))
