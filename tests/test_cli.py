"""CLI smoke tests (artifact commands are exercised end to end)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

#: Every registered subcommand must carry a worked-example --help epilog.
SUBCOMMANDS = (
    "gpus", "table2", "fig6", "fig10", "plan", "chains", "serve",
    "bench-serve", "fleet",
)


@pytest.fixture
def tiny_model(monkeypatch):
    """A fast-to-plan model registered into the zoo for serve smoke tests."""
    from repro.core.dtypes import DType
    from repro.ir.blocks import dsc_block, standard_conv
    from repro.ir.graph import ModelGraph
    from repro.models.zoo import MODELS

    def build(dtype=DType.FP32):
        g = ModelGraph("tiny_cli")
        last = standard_conv(g, "stem", 3, 8, 32, 32, stride=2, dtype=dtype)
        dsc_block(g, "b1", 8, 16, 16, 16, after=last, dtype=dtype)
        g.validate()
        return g

    monkeypatch.setitem(MODELS, "tiny_cli", build)
    return "tiny_cli"


def test_gpus_listing(capsys):
    assert main(["gpus"]) == 0
    out = capsys.readouterr().out
    assert "GTX" in out and "RTX" in out and "Orin" in out


def test_plan_command(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "GTX"]) == 0
    out = capsys.readouterr().out
    assert "ExecutionPlan" in out and "FCM" in out


def test_plan_int8(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "Orin", "--dtype", "int8"]) == 0
    assert "int8" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", SUBCOMMANDS)
def test_help_epilog_has_examples(cmd, capsys):
    with pytest.raises(SystemExit) as exc:
        main([cmd, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "examples:" in out
    assert f"python -m repro.cli {cmd}" in out


def test_serve_command(capsys, tiny_model):
    assert main([
        "serve", tiny_model, "--gpu", "GTX",
        "--requests", "16", "--rate", "100000", "--max-batch", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out and "1 planning pass" in out


def test_bench_serve_command(capsys, tiny_model):
    assert main([
        "bench-serve", "--models", tiny_model, "--batches", "1,2,4",
        "--gpu", "GTX",
    ]) == 0
    out = capsys.readouterr().out
    assert "vs b=1" in out
    assert "planner invocations: 1" in out


def test_serve_command_with_fleet(capsys, tiny_model):
    assert main([
        "serve", tiny_model, "--gpus", "GTX,RTX",
        "--requests", "16", "--rate", "100000", "--max-batch", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet[GTX+RTX]" in out and "plan hit rate" in out


def test_bench_serve_command_with_fleet(capsys, tiny_model):
    assert main([
        "bench-serve", "--models", tiny_model, "--batches", "1,2",
        "--gpus", "GTX,RTX",
    ]) == 0
    out = capsys.readouterr().out
    assert "worker" in out and "fleet hit rate" in out


def test_fleet_command(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,RTX", "--models", tiny_model,
        "--requests", "16", "--rate", "100000",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet[GTX+RTX] policy=affinity" in out
    assert "GTX#0" in out and "RTX#1" in out


def test_fleet_command_explain_traces_routing(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,RTX", "--models", tiny_model,
        "--requests", "8", "--rate", "100000", "--explain",
    ]) == 0
    out = capsys.readouterr().out
    assert "routing trace" in out
    assert out.count("#0 ") >= 1  # at least the first decision is printed


def test_fleet_command_round_robin(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,GTX", "--models", tiny_model,
        "--requests", "8", "--rate", "100000", "--policy", "round_robin",
    ]) == 0
    assert "policy=round_robin" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_unknown_model_raises():
    from repro.errors import UnsupportedError

    with pytest.raises(UnsupportedError):
        main(["plan", "resnet"])
