"""CLI smoke tests (artifact commands are exercised end to end)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

#: Every registered subcommand must carry a worked-example --help epilog.
SUBCOMMANDS = (
    "gpus", "table2", "fig6", "fig10", "plan", "chains", "serve",
    "bench-serve", "fleet", "tune",
)

#: ... and so must every `tune` group subcommand (PR-1 house style).
TUNE_SUBCOMMANDS = ("run", "show", "export")


@pytest.fixture
def tiny_model(monkeypatch):
    """A fast-to-plan model registered into the zoo for serve smoke tests."""
    from repro.core.dtypes import DType
    from repro.ir.blocks import dsc_block, standard_conv
    from repro.ir.graph import ModelGraph
    from repro.models.zoo import MODELS

    def build(dtype=DType.FP32):
        g = ModelGraph("tiny_cli")
        last = standard_conv(g, "stem", 3, 8, 32, 32, stride=2, dtype=dtype)
        dsc_block(g, "b1", 8, 16, 16, 16, after=last, dtype=dtype)
        g.validate()
        return g

    monkeypatch.setitem(MODELS, "tiny_cli", build)
    return "tiny_cli"


def test_gpus_listing(capsys):
    assert main(["gpus"]) == 0
    out = capsys.readouterr().out
    assert "GTX" in out and "RTX" in out and "Orin" in out


def test_plan_command(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "GTX"]) == 0
    out = capsys.readouterr().out
    assert "ExecutionPlan" in out and "FCM" in out


def test_plan_int8(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "Orin", "--dtype", "int8"]) == 0
    assert "int8" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", SUBCOMMANDS)
def test_help_epilog_has_examples(cmd, capsys):
    with pytest.raises(SystemExit) as exc:
        main([cmd, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "examples:" in out
    assert f"python -m repro.cli {cmd}" in out


def test_serve_command(capsys, tiny_model):
    assert main([
        "serve", tiny_model, "--gpu", "GTX",
        "--requests", "16", "--rate", "100000", "--max-batch", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out and "1 planning pass" in out


def test_bench_serve_command(capsys, tiny_model):
    assert main([
        "bench-serve", "--models", tiny_model, "--batches", "1,2,4",
        "--gpu", "GTX",
    ]) == 0
    out = capsys.readouterr().out
    assert "vs b=1" in out
    assert "planner invocations: 1" in out


def test_serve_command_with_fleet(capsys, tiny_model):
    assert main([
        "serve", tiny_model, "--gpus", "GTX,RTX",
        "--requests", "16", "--rate", "100000", "--max-batch", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet[GTX+RTX]" in out and "plan hit rate" in out


def test_bench_serve_command_with_fleet(capsys, tiny_model):
    assert main([
        "bench-serve", "--models", tiny_model, "--batches", "1,2",
        "--gpus", "GTX,RTX",
    ]) == 0
    out = capsys.readouterr().out
    assert "worker" in out and "fleet hit rate" in out


def test_fleet_command(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,RTX", "--models", tiny_model,
        "--requests", "16", "--rate", "100000",
    ]) == 0
    out = capsys.readouterr().out
    assert "fleet[GTX+RTX] policy=affinity" in out
    assert "GTX#0" in out and "RTX#1" in out


def test_fleet_command_explain_traces_routing(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,RTX", "--models", tiny_model,
        "--requests", "8", "--rate", "100000", "--explain",
    ]) == 0
    out = capsys.readouterr().out
    assert "routing trace" in out
    assert out.count("#0 ") >= 1  # at least the first decision is printed


def test_fleet_command_round_robin(capsys, tiny_model):
    assert main([
        "fleet", "--gpus", "GTX,GTX", "--models", tiny_model,
        "--requests", "8", "--rate", "100000", "--policy", "round_robin",
    ]) == 0
    assert "policy=round_robin" in capsys.readouterr().out


@pytest.mark.parametrize("cmd", TUNE_SUBCOMMANDS)
def test_tune_subcommand_epilogs(cmd, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["tune", cmd, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "examples:" in out
    assert f"python -m repro.cli tune {cmd}" in out


@pytest.fixture
def tiny_db_path(tmp_path, tiny_model, capsys):
    """A tuning DB for the tiny model, built through the CLI itself."""
    path = tmp_path / "tune.json"
    assert main([
        "tune", "run", "--models", tiny_model, "--gpus", "GTX",
        "--db", str(path), "--iterations", "3",
    ]) == 0
    capsys.readouterr()  # drop the build output
    return path


def test_tune_run_reports_and_persists(capsys, tiny_model, tmp_path):
    path = tmp_path / "tune.json"
    assert main([
        "tune", "run", "--models", tiny_model, "--gpus", "GTX,RTX",
        "--db", str(path), "--iterations", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "candidates measured" in out
    assert "fitted calibration factors" in out
    assert "new or improved)" in out and path.exists()
    # Re-running identically accumulates into the same DB without
    # duplicating or churning records.
    assert main([
        "tune", "run", "--models", tiny_model, "--gpus", "GTX",
        "--db", str(path), "--iterations", "3",
    ]) == 0
    assert "(0 new or improved)" in capsys.readouterr().out


def test_tune_show_command(capsys, tiny_model, tiny_db_path):
    assert main(["tune", "show", "--db", str(tiny_db_path)]) == 0
    out = capsys.readouterr().out
    assert "model-level records" in out and "calibration factors" in out
    assert main(["tune", "show", "--db", str(tiny_db_path), "--records"]) == 0
    assert "all records" in capsys.readouterr().out


def test_tune_show_tolerates_foreign_model_records(capsys, tmp_path):
    # A schema-valid model record with the wrong geometry arity (another
    # tool's convention) must not crash the summary.
    from repro.tune.records import TuningDB, TuningKey, TuningRecord

    db = TuningDB()
    db.add(TuningRecord(
        key=TuningKey("model", ("solo",), "GTX", "fp32", "paper"),
        tiling={}, est_cost_s=1e-4, measured_cost_s=1e-4, tuned_cost_s=1e-4,
        gma_bytes=1, evaluated=1,
    ))
    path = tmp_path / "foreign.json"
    db.save(path)
    assert main(["tune", "show", "--db", str(path)]) == 0
    assert "0 models, 0 steps" in capsys.readouterr().out


def test_tune_export_is_canonical(capsys, tiny_db_path, tmp_path):
    out_path = tmp_path / "canonical.json"
    assert main([
        "tune", "export", "--db", str(tiny_db_path), "--out", str(out_path),
    ]) == 0
    assert "exported" in capsys.readouterr().out
    assert out_path.read_bytes() == tiny_db_path.read_bytes()


def test_plan_with_db_calibrates(capsys, tiny_model, tiny_db_path):
    assert main([
        "plan", tiny_model, "--gpu", "GTX", "--db", str(tiny_db_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "calibrated planning" in out and "est latency" in out


def test_serve_with_db_warm_starts_fleet(capsys, tiny_model, tiny_db_path):
    assert main([
        "serve", tiny_model, "--gpus", "GTX,GTX",
        "--requests", "16", "--rate", "100000", "--db", str(tiny_db_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "warm-started plan(s)" in out and "0 on the critical path" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_unknown_model_raises():
    from repro.errors import UnsupportedError

    with pytest.raises(UnsupportedError):
        main(["plan", "resnet"])
