"""CLI smoke tests (artifact commands are exercised end to end)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_gpus_listing(capsys):
    assert main(["gpus"]) == 0
    out = capsys.readouterr().out
    assert "GTX" in out and "RTX" in out and "Orin" in out


def test_plan_command(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "GTX"]) == 0
    out = capsys.readouterr().out
    assert "ExecutionPlan" in out and "FCM" in out


def test_plan_int8(capsys):
    assert main(["plan", "mobilenet_v1", "--gpu", "Orin", "--dtype", "int8"]) == 0
    assert "int8" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_unknown_model_raises():
    from repro.errors import UnsupportedError

    with pytest.raises(UnsupportedError):
        main(["plan", "resnet"])
