"""Epilogue and parameter-generation coverage beyond the kernel paths."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import dw_spec, pw_spec
from repro.core.dtypes import DType
from repro.core.quantize import QuantParams
from repro.errors import ShapeError, UnsupportedError
from repro.kernels.epilogue import ConvEpilogue
from repro.kernels.params import chain_quant, make_layer_params


class TestConvEpilogue:
    def test_fp32_norm_and_act(self, rng):
        scale = np.array([2.0, 0.5], dtype=np.float32)
        shift = np.array([1.0, -1.0], dtype=np.float32)
        epi = ConvEpilogue(norm_scale=scale, norm_shift=shift, activation="relu")
        acc = rng.standard_normal((2, 5)).astype(np.float32)
        out = epi.apply(acc, 0, 2, DType.FP32)
        want = np.maximum(acc * scale[:, None] + shift[:, None], 0)
        np.testing.assert_allclose(out, want, rtol=1e-6)
        assert out.dtype == np.float32

    def test_channel_slice(self, rng):
        scale = np.arange(1, 9, dtype=np.float32)
        shift = np.zeros(8, dtype=np.float32)
        epi = ConvEpilogue(norm_scale=scale, norm_shift=shift, activation=None)
        acc = np.ones((2, 3), dtype=np.float32)
        out = epi.apply(acc, 4, 6, DType.FP32)
        np.testing.assert_allclose(out[:, 0], [5.0, 6.0])

    def test_slice_mismatch_rejected(self):
        epi = ConvEpilogue(
            norm_scale=np.ones(8, np.float32), norm_shift=np.zeros(8, np.float32)
        )
        with pytest.raises(ShapeError):
            epi.apply(np.ones((3, 2), np.float32), 0, 2, DType.FP32)

    def test_norm_pair_required(self):
        with pytest.raises(ShapeError):
            ConvEpilogue(norm_scale=np.ones(2, np.float32), norm_shift=None)

    def test_int8_requires_scales(self):
        epi = ConvEpilogue(activation=None)
        with pytest.raises(UnsupportedError):
            epi.apply(np.ones((2, 2), np.int32), 0, 2, DType.INT8)

    def test_int8_saturates(self):
        epi = ConvEpilogue(
            activation=None,
            in_scale=QuantParams(1.0),
            w_scale=QuantParams(1.0),
            out_scale=QuantParams(1.0),
        )
        acc = np.array([[10**6, -(10**6)]], dtype=np.int32)
        out = epi.apply(acc, 0, 1, DType.INT8)
        np.testing.assert_array_equal(out, [[127, -128]])


class TestLayerParams:
    def test_deterministic_per_seed(self):
        spec = pw_spec()
        a = make_layer_params(spec, seed=3)
        b = make_layer_params(spec, seed=3)
        c = make_layer_params(spec, seed=4)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert not np.array_equal(a.weights, c.weights)

    def test_weight_shapes(self):
        assert make_layer_params(pw_spec(c_in=8, c_out=16)).weights.shape == (16, 8)
        assert make_layer_params(dw_spec(c=8, kernel=5)).weights.shape == (8, 5, 5)

    def test_int8_weights_are_int8(self):
        p = make_layer_params(pw_spec(dtype=DType.INT8))
        assert p.weights.dtype == np.int8
        assert p.epilogue.is_quantized
        assert p.out_scale is not None and p.out_scale.scale > 0

    def test_chain_quant_links_scales(self):
        p1 = make_layer_params(pw_spec("a", dtype=DType.INT8))
        p2 = chain_quant(p1, dw_spec("b", c=16, dtype=DType.INT8))
        assert p2.in_scale is p1.out_scale

    def test_chain_quant_fp32_noop(self):
        p1 = make_layer_params(pw_spec("a"))
        p2 = chain_quant(p1, dw_spec("b", c=16))
        assert p2.in_scale is None and p2.out_scale is None

    def test_no_norm_layer(self):
        p = make_layer_params(pw_spec(norm=False))
        assert p.epilogue.norm_scale is None
