"""End-to-end integration: fused plans must be numerically faithful.

The strongest whole-system check: run a real (small) network functionally
under (a) an all-LBL plan and (b) FusePlanner's fused plan, on the simulated
GPU, and require identical outputs — bit-exact for INT8.  Also verifies that
the planner's GMA estimates equal the functional execution's metered bytes
end to end (the measured-convention contract at system scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.gpu.specs import GTX1660, ORIN
from repro.ir.blocks import dsc_block, inverted_residual_block, standard_conv
from repro.ir.graph import GlueSpec, ModelGraph
from repro.planner.plan import ExecutionPlan, FcmStep, GlueStep, LblStep, StdStep
from repro.planner.planner import FusePlanner
from repro.runtime.network_params import materialize_network
from repro.runtime.session import InferenceSession


def _small_net(dtype=DType.FP32) -> ModelGraph:
    g = ModelGraph("small")
    first = standard_conv(g, "stem", 3, 16, 32, 32, stride=2, dtype=dtype)
    last = dsc_block(g, "b1", 16, 32, 16, 16, after=first, dtype=dtype)
    last = inverted_residual_block(
        g, "ir1", 32, 32, 16, 16, expansion=2, after=last, dtype=dtype
    )
    last = dsc_block(g, "b2", 32, 48, 16, 16, stride=2, after=last, dtype=dtype)
    g.add(GlueSpec("gap", "gap", 48), after=last)
    g.validate()
    return g


def _unfused_plan(fused: ExecutionPlan, planner: FusePlanner) -> ExecutionPlan:
    """Rewrite a plan with every FCM step split back into two LBL steps."""
    out = ExecutionPlan(fused.model_name, fused.gpu, fused.dtype)
    for step in fused.steps:
        if isinstance(step, FcmStep):
            for spec in (step.first, step.second):
                lbl = planner.lbl_plan(spec)
                out.steps.append(
                    LblStep(spec=spec, tiling=lbl.tiling, est_gma_bytes=lbl.gma_bytes)
                )
        else:
            out.steps.append(step)
    return out


@pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8])
def test_fused_equals_unfused_end_to_end(dtype, rng):
    g = _small_net(dtype)
    planner = FusePlanner(ORIN)
    fused_plan = planner.plan(g)
    assert fused_plan.fcm_steps, "expected the planner to fuse something"
    unfused_plan = _unfused_plan(fused_plan, planner)
    net = materialize_network(g, dtype)
    x = (
        rng.integers(-128, 128, (3, 32, 32)).astype(np.int8)
        if dtype is DType.INT8
        else rng.standard_normal((3, 32, 32)).astype(np.float32)
    )
    out_fused = InferenceSession(g, fused_plan, net).run(x)
    out_unfused = InferenceSession(g, unfused_plan, net).run(x)
    if dtype is DType.INT8:
        np.testing.assert_array_equal(out_fused.output, out_unfused.output)
    else:
        np.testing.assert_allclose(
            out_fused.output, out_unfused.output, rtol=1e-4, atol=1e-5
        )
    # Fusion must strictly reduce end-to-end global traffic and launches.
    assert out_fused.total_gma_bytes < out_unfused.total_gma_bytes
    assert out_fused.kernel_launches < out_unfused.kernel_launches


def test_plan_estimates_equal_metered_execution(rng):
    """Sum of per-step estimates == functional session's metered GMA."""
    g = _small_net()
    planner = FusePlanner(GTX1660, convention="measured")
    plan = planner.plan(g)
    net = materialize_network(g, DType.FP32)
    rep = InferenceSession(g, plan, net).run(
        rng.standard_normal((3, 32, 32)).astype(np.float32)
    )
    metered = {
        r.name: r.counters.total_bytes
        for r in rep.records
        if r.kind in ("fcm", "lbl")
    }
    for step in plan.steps:
        if isinstance(step, FcmStep):
            assert metered["+".join(step.layer_names)] == step.est_gma_bytes
        elif isinstance(step, LblStep):
            assert metered[step.spec.name] == step.est_gma_bytes


def test_plans_feasible_on_every_paper_gpu(rng):
    """The planner's choices must always survive kernel capacity checks."""
    from repro.gpu.specs import ALL_GPUS

    for gpu in ALL_GPUS:
        g = _small_net()
        plan = FusePlanner(gpu).plan(g)
        net = materialize_network(g, DType.FP32)
        rep = InferenceSession(g, plan, net).run(
            rng.standard_normal((3, 32, 32)).astype(np.float32)
        )
        assert rep.output is not None


def test_std_and_glue_steps_preserved():
    g = _small_net()
    plan = FusePlanner(GTX1660).plan(g)
    assert any(isinstance(s, StdStep) for s in plan.steps)
    assert any(
        isinstance(s, GlueStep) and s.spec.op == "add" for s in plan.steps
    )
