"""Observability suite: tracer, metrics, exporters, determinism, overhead.

Covers the acceptance criteria of the observability PR:

* **tracer/metrics** — nested spans timestamp from the injected clock
  (never wall time), attributes canonicalize, instruments validate names /
  label sets / bucket shapes, and the null sinks are inert;
* **exporters** — Chrome-trace JSON and Prometheus text are schema-valid
  and byte-stable for identical contents; histogram bucket boundaries
  survive a canonical JSON round trip;
* **determinism** — replaying the same stream twice (single server and an
  autoscaled fleet) produces *byte-identical* trace JSON and metrics text;
* **zero overhead** — with the default null sinks every report (stream,
  fleet, tuning DB) is field/byte-identical to an instrumented run, so
  observability can never perturb what it measures;
* **tooling** — `tools/trace_view.py` summarizes a real trace offline and
  the CLI `--trace-out/--metrics-out` flags write both artifacts.
"""

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from helpers import register_tiny_zoo
from repro.errors import PlanError
from repro.gpu.specs import GTX1660
from repro.obs import (
    BATCH_SIZE_BUCKETS,
    NULL_METRICS,
    NULL_TRACER,
    QUEUE_WAIT_BUCKETS_S,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Tracer,
    chrome_trace_json,
    prometheus_text,
    resolve_metrics,
    resolve_tracer,
    write_chrome_trace,
    write_prometheus,
)
from repro.serve import AutoscalePolicy, FakeClock, capacity_rps, fleet_replay, replay

SEED = 7
TOOLS = Path(__file__).resolve().parent.parent / "tools"


# ---- tracer -----------------------------------------------------------------


class TestTracer:
    def test_span_reads_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer", model="m"):
            clock.t = 2.0
        (span,) = tracer.spans
        assert (span.start_s, span.end_s) == (0.0, 2.0)
        assert span.duration_s == 2.0
        assert span.attrs == (("model", "m"),)

    def test_nesting_depth_and_parent(self):
        tracer = Tracer(FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # children close (and record) first
        assert (outer.depth, outer.parent_seq) == (0, -1)
        assert (inner.depth, inner.parent_seq) == (1, outer.seq)

    def test_no_clock_stamps_zero_not_walltime(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.instant("i")
        assert (tracer.spans[0].start_s, tracer.spans[0].end_s) == (0.0, 0.0)
        assert tracer.instants[0].t_s == 0.0

    def test_span_closes_on_exception(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert [s.name for s in tracer.spans] == ["doomed"]
        assert tracer._stack == []

    def test_add_span_is_flat_and_clockless(self):
        tracer = Tracer()  # no clock needed: caller owns the timestamps
        tracer.add_span("busy", 1.0, 3.0, pid="RTX#0", tid=1, batch_seq=4)
        (span,) = tracer.spans
        assert (span.start_s, span.end_s, span.pid, span.tid) == (1.0, 3.0, "RTX#0", 1)
        assert (span.depth, span.parent_seq) == (0, -1)

    def test_attrs_canonicalized_sorted(self):
        tracer = Tracer()
        tracer.instant("i", t_s=0.5, zeta=1, alpha=2)
        assert tracer.instants[0].attrs == (("alpha", 2), ("zeta", 1))

    def test_null_tracer_inert(self):
        assert not NullTracer.enabled
        with NULL_TRACER.span("ignored", attr=1):
            pass
        NULL_TRACER.add_span("x", 0.0, 1.0)
        NULL_TRACER.instant("y")
        assert len(NULL_TRACER) == 0
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer


# ---- metrics ----------------------------------------------------------------


class TestMetrics:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", help="x")
        c.inc(worker="a")
        c.inc(2.0, worker="a")
        c.inc(worker="b")
        assert c.value(worker="a") == 3.0
        assert c.value(worker="b") == 1.0
        assert c.value(worker="absent") == 0.0

    def test_counter_rejects_negative(self):
        with pytest.raises(PlanError, match="negative"):
            MetricsRegistry().counter("repro_x_total").inc(-1.0)

    def test_gauge_last_write_wins(self):
        g = MetricsRegistry().gauge("repro_workers")
        g.set(2)
        g.set(5)
        assert g.value() == 5.0

    def test_histogram_cumulative_buckets(self):
        h = MetricsRegistry().histogram("repro_wait", (1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        series = h.series[()]
        assert series.bucket_counts == [1, 2, 3]  # cumulative, +Inf == count
        assert series.count == 4
        assert series.sum == 555.5

    def test_histogram_validates_bounds(self):
        reg = MetricsRegistry()
        with pytest.raises(PlanError, match="at least one"):
            reg.histogram("repro_empty", ())
        with pytest.raises(PlanError, match="strictly increase"):
            reg.histogram("repro_bad", (1.0, 1.0))
        with pytest.raises(PlanError, match="non-finite"):
            reg.histogram("repro_inf", (1.0, float("inf")))

    def test_registry_get_or_create_and_shape_conflicts(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total")
        assert reg.counter("repro_x_total") is c
        with pytest.raises(PlanError, match="already registered"):
            reg.gauge("repro_x_total")
        reg.histogram("repro_h", (1.0, 2.0))
        with pytest.raises(PlanError, match="different buckets"):
            reg.histogram("repro_h", (1.0, 3.0))

    def test_names_and_labels_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(PlanError, match="invalid metric name"):
            reg.counter("bad-name")
        with pytest.raises(PlanError, match="invalid metric label"):
            reg.counter("repro_ok_total").inc(**{"bad-label": 1})

    def test_families_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_z_total")
        reg.gauge("repro_a")
        assert [f.name for f in reg.families()] == ["repro_a", "repro_z_total"]

    def test_null_metrics_inert(self):
        assert not NullMetrics.enabled
        NULL_METRICS.counter("repro_x_total").inc(5.0, worker="a")
        NULL_METRICS.gauge("repro_g").set(1.0)
        NULL_METRICS.histogram("repro_h", (1.0,)).observe(0.5)
        assert NULL_METRICS.families() == []
        assert len(NULL_METRICS) == 0
        assert resolve_metrics(None) is NULL_METRICS
        reg = MetricsRegistry()
        assert resolve_metrics(reg) is reg


# ---- exporters --------------------------------------------------------------


def _demo_tracer() -> Tracer:
    clock = FakeClock()
    tracer = Tracer(clock, pid="RTX#0")
    with tracer.span("batch.execute", model="tiny", batch_size=2):
        clock.t = 1e-3
    tracer.add_span("worker.busy", 0.0, 1e-3, pid="RTX#1", tid=1)
    tracer.instant("fleet.route", t_s=5e-4, pid="RTX#0", seq=0)
    return tracer


class TestChromeTrace:
    def test_schema_valid(self):
        doc = json.loads(chrome_trace_json(_demo_tracer()))
        assert set(doc) == {"displayTimeUnit", "traceEvents"}
        events = doc["traceEvents"]
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        metas = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"RTX#0", "RTX#1"}
        xs = [e for e in events if e["ph"] == "X"]
        assert all({"ts", "dur", "cat", "args"} <= set(e) for e in xs)
        assert [e["name"] for e in xs] == ["batch.execute", "worker.busy"]
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "p" and instant["ts"] == 500.0

    def test_events_time_ordered_and_byte_stable(self):
        a, b = chrome_trace_json(_demo_tracer()), chrome_trace_json(_demo_tracer())
        assert a == b
        events = json.loads(a)["traceEvents"]
        stamped = [e for e in events if "ts" in e]
        assert [e["ts"] for e in stamped] == sorted(e["ts"] for e in stamped)

    def test_non_json_attrs_stringified(self):
        tracer = Tracer()
        tracer.add_span("s", 0.0, 1.0, dtype=GTX1660)  # arbitrary object attr
        args = json.loads(chrome_trace_json(tracer))["traceEvents"][-1]["args"]
        assert args["dtype"] == str(GTX1660)

    def test_write_returns_path_with_trailing_newline(self, tmp_path):
        out = tmp_path / "trace.json"
        assert write_chrome_trace(_demo_tracer(), out) == str(out)
        text = out.read_text()
        assert text.endswith("\n") and json.loads(text)


class TestPrometheusText:
    def test_exposition_layout(self):
        reg = MetricsRegistry()
        reg.counter("repro_req_total", help="Requests").inc(3, worker="a")
        reg.histogram("repro_wait", (1.0, 10.0), help="Waits").observe(5.0)
        text = prometheus_text(reg)
        lines = text.splitlines()
        assert lines[0] == "# HELP repro_req_total Requests"
        assert 'repro_req_total{worker="a"} 3' in lines
        assert 'repro_wait_bucket{le="1"} 0' in lines
        assert 'repro_wait_bucket{le="10"} 1' in lines
        assert 'repro_wait_bucket{le="+Inf"} 1' in lines
        assert "repro_wait_sum 5" in lines
        assert "repro_wait_count 1" in lines
        assert text.endswith("\n")

    def test_series_sorted_and_byte_stable(self):
        def build():
            reg = MetricsRegistry()
            c = reg.counter("repro_x_total")
            c.inc(worker="b")
            c.inc(worker="a")
            return reg

        a, b = prometheus_text(build()), prometheus_text(build())
        assert a == b
        assert a.index('worker="a"') < a.index('worker="b"')

    def test_empty_registry_renders_empty(self, tmp_path):
        assert prometheus_text(MetricsRegistry()) == ""
        out = tmp_path / "m.txt"
        assert write_prometheus(MetricsRegistry(), out) == str(out)
        assert out.read_text() == ""

    @pytest.mark.parametrize("buckets", [QUEUE_WAIT_BUCKETS_S, BATCH_SIZE_BUCKETS])
    def test_bucket_bounds_survive_canonical_json_round_trip(self, buckets):
        # The fixed boundaries must re-parse to the exact same floats (and
        # hence the exact same `le` labels) after a canonical JSON round
        # trip — the format replay artifacts are stored in.
        round_tripped = json.loads(
            json.dumps(list(buckets), sort_keys=True, separators=(",", ":"))
        )
        assert tuple(round_tripped) == tuple(buckets)
        assert MetricsRegistry().histogram("repro_h", round_tripped).buckets == buckets


# ---- replay determinism -----------------------------------------------------


def _cold_memo():
    # Byte-identical acceptance compares two *process* invocations; the
    # planner's shared GeometryMemo would otherwise be warm on the second
    # in-process run and skew the memo hit/miss counters.
    from repro.planner.memo import shared_memo

    shared_memo().clear()


def _traced_replay():
    _cold_memo()
    tracer, metrics = Tracer(), MetricsRegistry()
    report = replay(
        GTX1660, "tiny_a", n_requests=24, rate_rps=20000.0, max_batch=4,
        slo_s=5e-3, admission="shed", tracer=tracer, metrics=metrics,
    )
    return report, chrome_trace_json(tracer), prometheus_text(metrics)


def _traced_fleet_replay():
    _cold_memo()
    tracer, metrics = Tracer(), MetricsRegistry()
    cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
    report = fleet_replay(
        [GTX1660], ["tiny_a", "tiny_b"], n_requests=24, rate_rps=cap * 8,
        max_batch=4, arrival="lognormal", seed=SEED,
        autoscale=AutoscalePolicy(
            min_workers=1, max_workers=3, grow_backlog_s=2e-5,
            shrink_backlog_s=1e-6,
        ),
        tracer=tracer, metrics=metrics,
    )
    return report, chrome_trace_json(tracer), prometheus_text(metrics)


@pytest.fixture
def tiny_zoo(monkeypatch):
    register_tiny_zoo(monkeypatch)


class TestReplayDeterminism:
    def test_replay_twice_byte_identical(self, tiny_zoo):
        _, trace_a, metrics_a = _traced_replay()
        _, trace_b, metrics_b = _traced_replay()
        assert trace_a == trace_b
        assert metrics_a == metrics_b

    def test_autoscaled_fleet_replay_twice_byte_identical(self, tiny_zoo):
        report_a, trace_a, metrics_a = _traced_fleet_replay()
        report_b, trace_b, metrics_b = _traced_fleet_replay()
        assert trace_a == trace_b
        assert metrics_a == metrics_b
        assert report_a.scale_events  # the autoscaler actually acted

    def test_fleet_trace_covers_the_whole_stack(self, tiny_zoo):
        _, trace, metrics_text = _traced_fleet_replay()
        events = json.loads(trace)["traceEvents"]
        names = {e["name"] for e in events}
        # Execution, occupancy and request lanes plus routing/scaling
        # instants: the span taxonomy the README documents.
        assert {"batch.execute", "worker.busy", "request.wait",
                "fleet.route", "server.enqueue", "planner.plan"} <= names
        assert any(n.startswith("autoscale.") for n in names)
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
        for family in ("repro_requests_total", "repro_batches_total",
                       "repro_queue_wait_seconds_bucket", "repro_plans_total",
                       "repro_scale_events_total", "repro_fleet_workers"):
            assert family in metrics_text


# ---- zero overhead ----------------------------------------------------------


class TestZeroOverhead:
    def test_replay_report_unperturbed_by_tracing(self, tiny_zoo):
        kwargs = dict(n_requests=24, rate_rps=20000.0, max_batch=4)
        plain = replay(GTX1660, "tiny_a", **kwargs)
        traced = replay(
            GTX1660, "tiny_a", tracer=Tracer(), metrics=MetricsRegistry(),
            **kwargs,
        )
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    def test_fleet_report_unperturbed_by_tracing(self, tiny_zoo):
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
        kwargs = dict(
            n_requests=24, rate_rps=cap * 8, max_batch=4, arrival="lognormal",
            seed=SEED,
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=3, grow_backlog_s=2e-5,
                shrink_backlog_s=1e-6,
            ),
        )
        plain = fleet_replay([GTX1660], ["tiny_a", "tiny_b"], **kwargs)
        traced = fleet_replay(
            [GTX1660], ["tiny_a", "tiny_b"], tracer=Tracer(),
            metrics=MetricsRegistry(), **kwargs,
        )
        assert dataclasses.asdict(traced) == dataclasses.asdict(plain)

    def test_tuning_db_bytes_unperturbed_by_tracing(self, tiny_zoo):
        from repro.core.dtypes import DType
        from repro.tune.measure import measure_model
        from repro.tune.records import TuningDB

        def run(**sinks):
            db = TuningDB()
            measure_model("tiny_a", GTX1660, DType.FP32, db=db, iterations=4,
                          **sinks)
            return db.dumps()

        metrics = MetricsRegistry()
        assert run() == run(tracer=Tracer(), metrics=metrics)
        assert metrics.counter("repro_tune_candidates_total").value(
            model="tiny_a", gpu=GTX1660.name
        ) > 0

    def test_reused_server_keeps_its_own_sinks(self, tiny_zoo):
        from repro.serve import ModelServer

        tracer = Tracer()
        clock = FakeClock()
        server = ModelServer(
            GTX1660, max_batch=4, clock=clock, sleep=clock.sleep, tracer=tracer
        )
        replay(GTX1660, "tiny_a", n_requests=8, rate_rps=20000.0, server=server)
        assert any(s.name == "batch.execute" for s in tracer.spans)


# ---- tooling ----------------------------------------------------------------


class TestTraceView:
    def test_summarizes_fleet_trace(self, tiny_zoo, tmp_path):
        _, trace, _ = _traced_fleet_replay()
        path = tmp_path / "TRACE_test.json"
        path.write_text(trace + "\n")
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "trace_view.py"), str(path)],
            capture_output=True, text=True, check=True,
        )
        out = proc.stdout
        assert "top" in out and "self time" in out
        assert "per-worker device occupancy" in out
        assert "queue wait" in out
        assert "GTX#0" in out

    def test_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        proc = subprocess.run(
            [sys.executable, str(TOOLS / "trace_view.py"), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode != 0


class TestCliExport:
    def test_serve_writes_both_artifacts(self, tiny_zoo, tmp_path, capsys):
        from repro.cli import main

        trace_out = tmp_path / "TRACE_cli.json"
        metrics_out = tmp_path / "METRICS_cli.txt"
        rc = main([
            "serve", "tiny_a", "--gpu", "GTX", "--requests", "8",
            "--rate", "20000", "--max-batch", "4",
            "--trace-out", str(trace_out), "--metrics-out", str(metrics_out),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out
        doc = json.loads(trace_out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert "repro_requests_total" in metrics_out.read_text()
