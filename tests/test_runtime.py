"""Runtime tests: glue ops, network params, sessions, profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tvm import TvmCompiler
from repro.core.dtypes import DType
from repro.core.quantize import QuantParams
from repro.errors import ShapeError, UnsupportedError
from repro.gpu.specs import GTX1660, ORIN
from repro.ir.blocks import dsc_block, inverted_residual_block, standard_conv
from repro.ir.graph import GlueSpec, ModelGraph
from repro.planner.planner import FusePlanner
from repro.runtime.glue import apply_glue, glue_counters
from repro.runtime.network_params import materialize_network
from repro.runtime.profiler import compare, profile_table
from repro.runtime.session import InferenceSession, TvmSession


def _toy_graph(dtype=DType.FP32):
    g = ModelGraph("toy")
    first = standard_conv(g, "stem", 3, 16, 32, 32, stride=2, dtype=dtype)
    last = inverted_residual_block(g, "ir1", 16, 16, 16, 16, after=first, dtype=dtype)
    last = dsc_block(g, "b1", 16, 32, 16, 16, after=last, dtype=dtype)
    g.add(GlueSpec("gap", "gap", 32), after=last)
    g.validate()
    return g


class TestGlue:
    def test_add_fp32(self, rng):
        a = rng.standard_normal((2, 3, 3)).astype(np.float32)
        b = rng.standard_normal((2, 3, 3)).astype(np.float32)
        spec = GlueSpec("add", "add", 18)
        out, _ = apply_glue(spec, [a, b], [None, None], DType.FP32)
        np.testing.assert_allclose(out, a + b)

    def test_add_int8_requantizes(self, rng):
        a = rng.integers(-100, 100, (2, 4, 4)).astype(np.int8)
        b = rng.integers(-100, 100, (2, 4, 4)).astype(np.int8)
        sa, sb = QuantParams(0.1), QuantParams(0.05)
        out, scale = apply_glue(GlueSpec("add", "add", 32), [a, b], [sa, sb], DType.INT8)
        assert out.dtype == np.int8 and scale is sa
        # Mirror the implementation's fp32 arithmetic (float64 here can round
        # differently by one quantization step at exact .5 boundaries).
        real = a.astype(np.float32) * np.float32(0.1) + b.astype(np.float32) * np.float32(0.05)
        want = np.clip(np.rint(real / np.float32(0.1)), -128, 127).astype(np.int8)
        np.testing.assert_array_equal(out, want)

    def test_maxpool_halves(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        out, _ = apply_glue(GlueSpec("p", "maxpool2", 0), [x], [None], DType.FP32)
        assert out.shape == (3, 4, 4)
        assert out.max() == pytest.approx(x.max())

    def test_gap(self, rng):
        x = rng.standard_normal((5, 6, 6)).astype(np.float32)
        out, scale = apply_glue(GlueSpec("g", "gap", 5), [x], [None], DType.FP32)
        assert out.shape == (5,)
        assert scale is None
        np.testing.assert_allclose(out, x.mean(axis=(1, 2)), rtol=1e-5)

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            apply_glue(
                GlueSpec("a", "add", 1),
                [np.zeros((1, 2, 2)), np.zeros((1, 3, 3))],
                [None, None],
                DType.FP32,
            )

    def test_unknown_op(self):
        with pytest.raises(UnsupportedError):
            apply_glue(GlueSpec("x", "fft", 1), [np.zeros(1)], [None], DType.FP32)

    def test_counters_fused_free(self):
        spec = GlueSpec("a", "add", 100)
        assert glue_counters(spec, DType.FP32, fused=True).total_bytes == 0
        paid = glue_counters(spec, DType.FP32, fused=False)
        assert paid.total_bytes == 3 * 100 * 4
        assert paid.kernel_launches == 1


class TestNetworkParams:
    def test_scales_chain_through_convs(self):
        g = _toy_graph(DType.INT8)
        net = materialize_network(g, DType.INT8)
        # b1_dw consumes b1's predecessor output scale.
        pred = g.predecessors("b1_dw")[0]
        assert net["b1_dw"].in_scale is net.out_scales[pred]

    def test_scales_propagate_through_add(self):
        g = _toy_graph(DType.INT8)
        net = materialize_network(g, DType.INT8)
        add_scale = net.out_scales["ir1_add"]
        assert add_scale is not None
        assert net["b1_dw"].in_scale is not None

    def test_fp32_has_no_scales(self):
        net = materialize_network(_toy_graph(), DType.FP32)
        assert all(s is None for s in net.out_scales.values())

    def test_deterministic(self):
        g = _toy_graph()
        a = materialize_network(g, DType.FP32, seed=5)
        b = materialize_network(g, DType.FP32, seed=5)
        np.testing.assert_array_equal(a["b1_pw"].weights, b["b1_pw"].weights)


class TestSessions:
    @pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8])
    def test_ours_equals_tvm_numerically(self, dtype, rng):
        g = _toy_graph(dtype)
        net = materialize_network(g, dtype)
        plan = FusePlanner(GTX1660).plan(g)
        x = (
            rng.integers(-128, 128, (3, 32, 32)).astype(np.int8)
            if dtype is DType.INT8
            else rng.standard_normal((3, 32, 32)).astype(np.float32)
        )
        ours = InferenceSession(g, plan, net).run(x)
        tvm = TvmSession(g, TvmCompiler(GTX1660).compile(g, dtype), net).run(x)
        assert ours.output is not None and tvm.output is not None
        if dtype is DType.FP32:
            np.testing.assert_allclose(ours.output, tvm.output, rtol=1e-3, atol=1e-4)
        else:
            # INT8 pipelines may differ by one quantization step on a few
            # values at layer borders; outputs are fp32 after gap.
            np.testing.assert_allclose(ours.output, tvm.output, rtol=0.1, atol=0.2)

    def test_analytic_matches_functional_traffic(self, rng):
        g = _toy_graph()
        net = materialize_network(g, DType.FP32)
        plan = FusePlanner(ORIN).plan(g)
        sess = InferenceSession(g, plan, net)
        x = rng.standard_normal((3, 32, 32)).astype(np.float32)
        functional = sess.run(x)
        analytic = sess.run_analytic()
        assert functional.total_gma_bytes == analytic.total_gma_bytes
        assert functional.kernel_launches == analytic.kernel_launches
        assert functional.latency_s == pytest.approx(analytic.latency_s, rel=1e-6)

    def test_fusion_reduces_launches(self, rng):
        g = _toy_graph()
        net = materialize_network(g, DType.FP32)
        plan = FusePlanner(ORIN).plan(g)
        ours = InferenceSession(g, plan, net).run_analytic()
        tvm = TvmSession(g, TvmCompiler(ORIN).compile(g), net).run_analytic()
        if plan.fcm_steps:
            # TVM launches one kernel per conv; we fuse pairs (but pay glue
            # kernels TVM fused away).
            assert ours.kernel_launches <= tvm.kernel_launches + 2

    def test_report_describe_and_profile(self):
        g = _toy_graph()
        plan = FusePlanner(GTX1660).plan(g)
        rep = InferenceSession(g, plan, None).run_analytic()
        assert "toy on GTX" in rep.describe()
        table = profile_table(rep, top=5)
        assert "profile of toy" in table

    def test_compare_ratios(self):
        g = _toy_graph()
        plan = FusePlanner(GTX1660).plan(g)
        net = materialize_network(g, DType.FP32)
        ours = InferenceSession(g, plan, net).run_analytic()
        tvm = TvmSession(g, TvmCompiler(GTX1660).compile(g), net).run_analytic()
        c = compare(ours, tvm)
        assert c.speedup == pytest.approx(tvm.latency_s / ours.latency_s)
        assert c.energy_ratio == pytest.approx(ours.energy_j / tvm.energy_j)
        assert "GTX" in c.describe()
