"""Baseline tests: im2col oracles, cuDNN algorithm models, autotuner, TVM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import dw_spec, pw_spec, random_ifm, ref_layer
from repro.baselines.autotune import random_search
from repro.baselines.cudnn import (
    CudnnAlgo,
    best_cudnn_algo,
    cudnn_blocks,
    cudnn_counters,
    cudnn_timing,
    run_cudnn,
)
from repro.baselines.im2col import conv_via_im2col, depthwise_via_im2col, im2col
from repro.baselines.tvm import TvmCompiler, TvmGlueStep
from repro.core.dtypes import DType
from repro.core.ops import conv2d_depthwise, conv2d_standard
from repro.errors import PlanError
from repro.gpu.specs import GTX1660, RTX_A4000
from repro.ir.blocks import dsc_block, inverted_residual_block, standard_conv
from repro.ir.graph import ModelGraph
from repro.kernels.params import make_layer_params


class TestIm2col:
    def test_shape(self, rng):
        x = rng.standard_normal((3, 8, 8)).astype(np.float32)
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (27, 64)

    def test_conv_equivalence(self, rng):
        x = rng.standard_normal((3, 9, 9)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            conv_via_im2col(x, w, 2, 1), conv2d_standard(x, w, 2, 1), rtol=1e-4
        )

    def test_depthwise_equivalence(self, rng):
        x = rng.standard_normal((4, 9, 9)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            depthwise_via_im2col(x, w, 1, 1), conv2d_depthwise(x, w, 1, 1), rtol=1e-4
        )


@settings(max_examples=20, deadline=None)
@given(
    c=st.integers(1, 4),
    m=st.integers(1, 6),
    h=st.integers(4, 10),
    k=st.sampled_from([1, 3]),
    s=st.integers(1, 2),
)
def test_im2col_oracle_property(c, m, h, k, s):
    """im2col-GEMM and direct convolution agree on random geometries."""
    rng = np.random.default_rng(c * 37 + m * 11 + h + k + s)
    x = rng.standard_normal((c, h, h)).astype(np.float32)
    w = rng.standard_normal((m, c, k, k)).astype(np.float32)
    np.testing.assert_allclose(
        conv_via_im2col(x, w, s, k // 2),
        conv2d_standard(x, w, s, k // 2),
        rtol=1e-4, atol=1e-5,
    )


class TestCudnnModels:
    def test_implicit_beats_explicit_gemm(self):
        """Paper §VI-B: implicit GEMMs outperform direct GEMM."""
        for spec in (pw_spec(c_in=32, c_out=64, h=56, w=56),
                     dw_spec(c=64, h=56, w=56)):
            t_gemm = cudnn_timing(spec, CudnnAlgo.GEMM, RTX_A4000).t_total_s
            t_imp = cudnn_timing(spec, CudnnAlgo.IMPLICIT_GEMM, RTX_A4000).t_total_s
            t_pre = cudnn_timing(
                spec, CudnnAlgo.IMPLICIT_PRECOMP_GEMM, RTX_A4000
            ).t_total_s
            assert t_pre <= t_imp <= t_gemm

    def test_best_algo_is_precomp(self):
        algo, _ = best_cudnn_algo(pw_spec(c_in=32, c_out=64, h=56, w=56), RTX_A4000)
        assert algo is CudnnAlgo.IMPLICIT_PRECOMP_GEMM

    def test_explicit_gemm_pays_materialization(self):
        spec = pw_spec(c_in=32, c_out=64, h=28, w=28)
        c_gemm = cudnn_counters(spec, CudnnAlgo.GEMM)
        c_imp = cudnn_counters(spec, CudnnAlgo.IMPLICIT_GEMM)
        assert c_gemm.global_writes["im2col"] > 0
        assert "im2col" not in c_imp.global_writes
        assert c_gemm.total_bytes > c_imp.total_bytes

    def test_dw_duplicated_reads(self):
        spec = dw_spec(c=32, h=28, w=28, kernel=3)
        c = cudnn_counters(spec, CudnnAlgo.IMPLICIT_GEMM)
        # ~k^2/2 duplication: far more than one pass over the IFM.
        assert c.global_reads["ifm"] > 3 * spec.ifm.nbytes

    def test_occupancy_penalty(self):
        """Few blocks on many SMs must slow a launch down."""
        small = pw_spec(c_in=512, c_out=512, h=7, w=7)
        t64 = cudnn_timing(small, CudnnAlgo.IMPLICIT_PRECOMP_GEMM, RTX_A4000, 64)
        blocks = cudnn_blocks(small, 512)
        assert blocks < RTX_A4000.sm_count
        t512 = cudnn_timing(small, CudnnAlgo.IMPLICIT_PRECOMP_GEMM, RTX_A4000, 512)
        # The giant blocking moves fewer bytes but may not win once occupancy
        # collapses; at minimum both remain finite and ordered deterministically.
        assert t64.t_total_s > 0 and t512.t_total_s > 0

    def test_run_cudnn_matches_reference(self):
        for spec in (
            pw_spec(c_in=8, c_out=16, h=12, w=12),
            dw_spec(c=8, h=12, w=12),
            pw_spec(dtype=DType.INT8),
        ):
            params = make_layer_params(spec)
            x = random_ifm(spec)
            out, counters, timing = run_cudnn(params, x, CudnnAlgo.IMPLICIT_GEMM,
                                              RTX_A4000)
            ref = ref_layer(params, x)
            if spec.dtype is DType.INT8:
                np.testing.assert_array_equal(out, ref)
            else:
                np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-4)
            assert counters.kernel_launches == 1
            assert timing.t_total_s > 0


class TestAutotune:
    def test_deterministic(self):
        cand = list(range(100))
        r1 = random_search(cand, lambda x: (x - 42) ** 2, 20, seed=7)
        r2 = random_search(cand, lambda x: (x - 42) ** 2, 20, seed=7)
        assert r1 == r2

    def test_exhaustive_when_small(self):
        best, cost, evaluated = random_search([3, 1, 2], lambda x: x, 20, seed=0)
        assert best == 1 and cost == 1 and evaluated == 3

    def test_reports_evaluation_budget(self):
        out = random_search(list(range(100)), lambda x: x, 20, seed=3)
        assert out.evaluated == 20

    def test_cost_ties_break_to_lowest_index(self):
        # Flat cost surface: every seed must return candidate index 0 of the
        # sampled set — and with an exhaustive budget, index 0 overall.
        cand = ["a", "b", "c", "d"]
        for seed in range(5):
            out = random_search(cand, lambda _x: 1.0, iterations=10, seed=seed)
            assert out.config == "a"
        # Partial budgets still tie-break on candidate index within the
        # sampled subset: identical across repeat runs.
        big = list(range(1000))
        o1 = random_search(big, lambda _x: 0.0, iterations=5, seed=11)
        o2 = random_search(big, lambda _x: 0.0, iterations=5, seed=11)
        assert o1 == o2 and o1.evaluated == 5

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            random_search([], lambda x: x)

    def test_zero_budget_rejected(self):
        with pytest.raises(PlanError, match="iterations >= 1"):
            random_search([1, 2], lambda x: x, iterations=0)


class TestTvmCompiler:
    def _graph(self):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 56, 56, stride=2)
        last = inverted_residual_block(g, "ir1", 16, 16, 28, 28, after=first)
        dsc_block(g, "b1", 16, 32, 28, 28, after=last)
        return g

    def test_compile_covers_all_layers(self):
        g = self._graph()
        plan = TvmCompiler(GTX1660).compile(g)
        conv_names = {c.name for c in g.conv_layers()}
        assert {s.spec.name for s in plan.conv_steps} == conv_names

    def test_adds_are_fused(self):
        plan = TvmCompiler(GTX1660).compile(self._graph())
        glue = [s for s in plan.steps if isinstance(s, TvmGlueStep)]
        adds = [s for s in glue if s.spec.op == "add"]
        assert adds and all(s.fused for s in adds)
        non_adds = [s for s in glue if s.spec.op != "add"]
        assert all(not s.fused for s in non_adds)

    def test_tuning_deterministic(self):
        g = self._graph()
        p1 = TvmCompiler(GTX1660, seed=3).compile(g)
        p2 = TvmCompiler(GTX1660, seed=3).compile(g)
        assert [
            (s.spec.name, s.algo, s.gemm_tile) for s in p1.conv_steps
        ] == [(s.spec.name, s.algo, s.gemm_tile) for s in p2.conv_steps]

    def test_plan_latency_positive(self):
        g = self._graph()
        compiler = TvmCompiler(RTX_A4000)
        plan = compiler.compile(g)
        assert compiler.plan_latency_s(plan) > 0

    def test_invalid_iterations(self):
        with pytest.raises(PlanError):
            TvmCompiler(GTX1660, tuning_iterations=0)

    def test_describe(self):
        plan = TvmCompiler(GTX1660).compile(self._graph())
        assert "TvmPlan" in plan.describe()
