"""Cost-model tests: paper equations verbatim + measured == simulated."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import dw_spec, pw_spec, random_ifm
from repro.core.dtypes import DType
from repro.core.tiling import DwTiling, PwTiling, ceil_div, overlap_elements
from repro.errors import ShapeError, UnsupportedError
from repro.gpu.specs import RTX_A4000
from repro.kernels.params import make_layer_params
from repro.kernels.registry import build_lbl_kernel
from repro.planner.costs import (
    dw_feasible,
    dw_gma,
    lbl_gma,
    pw_feasible,
    pw_gma,
    pw_tile_footprint,
)


class TestPwGmaEquation2:
    def test_verbatim_value(self):
        """Eq. 2 on a hand-computable case."""
        spec = pw_spec(c_in=8, c_out=16, h=12, w=12)  # out_hw = 144
        t = PwTiling(tile_m=4, tile_hw=36)
        est = pw_gma(spec, t, "paper")
        weights = 16 * 8
        reads = ceil_div(16, 4) * (8 * 144) + ceil_div(144, 36) * weights
        assert est.reads_elems == reads
        assert est.writes_elems == 16 * 144
        assert est.total_bytes == (reads + 16 * 144) * 4

    def test_int8_bytes_quartered(self):
        spec = pw_spec()
        t = PwTiling(4, 36)
        assert (
            pw_gma(spec.with_dtype(DType.INT8), t).total_bytes * 4
            == pw_gma(spec, t).total_bytes
        )

    def test_larger_weight_tiles_fewer_ifm_reads(self):
        spec = pw_spec(c_in=32, c_out=64, h=14, w=14)
        small = pw_gma(spec, PwTiling(8, 49))
        big = pw_gma(spec, PwTiling(64, 49))
        assert big.reads_elems < small.reads_elems

    def test_kind_checked(self):
        with pytest.raises(ShapeError):
            pw_gma(dw_spec(), PwTiling(4, 16))

    def test_unknown_convention(self):
        with pytest.raises(UnsupportedError):
            pw_gma(pw_spec(), PwTiling(4, 16), "guessed")


class TestDwGmaEquation3:
    def test_verbatim_value_stride1(self):
        spec = dw_spec(c=8, h=16, w=16, kernel=3, stride=1)
        t = DwTiling(tile_c=8, tile_h=8, tile_w=8)
        est = dw_gma(spec, t, "paper")
        ovl = overlap_elements(16, 16, 8, 8, 3, 3, 1)
        reads = 2 * 8 * ovl + 8 * 16 * 16 + 4 * (8 * 9)
        assert est.reads_elems == reads
        assert est.writes_elems == 8 * 16 * 16

    def test_single_tile_no_overlap_term(self):
        spec = dw_spec(c=4, h=10, w=10)
        est = dw_gma(spec, DwTiling(4, 10, 10), "paper")
        assert est.reads_elems == 4 * 100 + 4 * 9

    def test_measured_matches_simulator_exactly(self):
        for kernel, stride, th, tw, tc in [
            (3, 1, 5, 5, 4), (3, 2, 4, 4, 8), (5, 1, 6, 7, 2), (5, 2, 3, 3, 8),
        ]:
            spec = dw_spec(c=8, h=16, w=16, kernel=kernel, stride=stride)
            params = make_layer_params(spec)
            x = random_ifm(spec)
            res = build_lbl_kernel(
                params, {"tile_c": tc, "tile_h": th, "tile_w": tw}
            ).simulate(x, RTX_A4000)
            est = dw_gma(spec, DwTiling(tc, th, tw), "measured")
            assert res.counters.total_bytes == est.total_bytes
            assert res.counters.read_bytes == est.read_bytes
            assert res.counters.write_bytes == est.write_bytes

    def test_paper_convention_upper_bounds_measured(self):
        """2x overlap charging + no border clamping => paper >= measured."""
        spec = dw_spec(c=8, h=28, w=28)
        for th in (4, 7, 14):
            t = DwTiling(8, th, th)
            assert dw_gma(spec, t, "paper").total_bytes >= dw_gma(
                spec, t, "measured"
            ).total_bytes


class TestPwMeasuredMatchesSimulator:
    @pytest.mark.parametrize("tile_m,tile_hw", [(4, 16), (16, 144), (3, 7)])
    def test_exact(self, tile_m, tile_hw):
        spec = pw_spec(c_in=8, c_out=16, h=12, w=12)
        params = make_layer_params(spec)
        res = build_lbl_kernel(
            params, {"tile_m": tile_m, "tile_hw": tile_hw}
        ).simulate(random_ifm(spec), RTX_A4000)
        est = pw_gma(spec, PwTiling(tile_m, tile_hw), "measured")
        assert res.counters.total_bytes == est.total_bytes

    def test_strided(self):
        spec = pw_spec(stride=2)
        params = make_layer_params(spec)
        res = build_lbl_kernel(params, {"tile_m": 4, "tile_hw": 9}).simulate(
            random_ifm(spec), RTX_A4000
        )
        est = pw_gma(spec, PwTiling(4, 9), "measured")
        assert res.counters.total_bytes == est.total_bytes


class TestConstraints:
    def test_pw_occupancy(self):
        spec = pw_spec(c_in=8, c_out=16, h=12, w=12)
        # 1 tile only -> violates #tiles >= #SMs on RTX (48 SMs).
        assert not pw_feasible(spec, PwTiling(16, 144), RTX_A4000)
        assert pw_feasible(spec, PwTiling(2, 16), RTX_A4000)

    def test_dw_l1(self, tiny_gpu):
        spec = dw_spec(c=64, h=64, w=64)
        assert not dw_feasible(spec, DwTiling(64, 64, 64), tiny_gpu)
        assert dw_feasible(spec, DwTiling(1, 8, 8), tiny_gpu)

    def test_footprint_streams_reduction(self):
        """The PW footprint must not scale with the channel count."""
        a = pw_tile_footprint(pw_spec(c_in=8), PwTiling(16, 32))
        b = pw_tile_footprint(pw_spec(c_in=1024), PwTiling(16, 32))
        assert a == b

    def test_lbl_dispatch(self):
        with pytest.raises(ShapeError):
            lbl_gma(pw_spec(), DwTiling(1, 1, 1))
        with pytest.raises(ShapeError):
            lbl_gma(dw_spec(), PwTiling(1, 1))


@settings(max_examples=30, deadline=None)
@given(
    c=st.sampled_from([4, 8, 16]),
    m=st.sampled_from([8, 16, 32]),
    hw=st.sampled_from([8, 12, 16]),
    tile_m=st.sampled_from([2, 4, 8, 64]),
    tile_hw=st.sampled_from([4, 16, 64, 256]),
)
def test_pw_measured_equals_simulated_property(c, m, hw, tile_m, tile_hw):
    """Property: Eq. 2 (measured) == simulator bytes on random configs."""
    spec = pw_spec(c_in=c, c_out=m, h=hw, w=hw)
    params = make_layer_params(spec)
    x = np.random.default_rng(0).standard_normal(spec.ifm.shape).astype(np.float32)
    res = build_lbl_kernel(params, {"tile_m": tile_m, "tile_hw": tile_hw}).simulate(
        x, RTX_A4000
    )
    est = pw_gma(spec, PwTiling(tile_m, tile_hw), "measured")
    assert res.counters.total_bytes == est.total_bytes
