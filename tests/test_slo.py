"""SLO traffic-layer suite: deadlines, admission, autoscaling, and the
deterministic replay harness around them.

Covers the acceptance criteria of the SLO-aware serving PR:

* **regression** — the default (no-SLO) replay paths stay *bit-identical* to
  the pre-refactor harness (pinned floats captured before the refactor);
* **attainment** — on a seeded heavy-tailed 16x-overload stream, admission
  control + deadline-aware flushing strictly improves SLO attainment over
  the accept-everything baseline, and the 0.5x-100x attainment curve is
  replay-deterministic;
* **autoscaler** — grows under backlog, shrinks when idle, honours its
  cooldown;
* **property tests** (hypothesis) — arrival generators are sorted,
  non-negative and seed-reproducible; the JSONL trace round trip is
  byte-identical; the diurnal generator hits its mean rate.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import register_tiny_zoo
from repro.core.dtypes import DType
from repro.errors import PlanError
from repro.gpu.specs import GTX1660
from repro.serve import (
    ARRIVAL_KINDS,
    AdmissionController,
    AutoscalePolicy,
    FakeClock,
    Fleet,
    ModelServer,
    TraceRequest,
    admission_controller,
    attainment_curve,
    capacity_rps,
    diurnal_arrival_times,
    fleet_replay,
    generate_arrivals,
    lognormal_arrival_times,
    pareto_arrival_times,
    percentile,
    read_trace,
    replay,
    write_trace,
)


@pytest.fixture(autouse=True)
def tiny_zoo(monkeypatch):
    register_tiny_zoo(monkeypatch)


def _server(**kw) -> ModelServer:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    srv = ModelServer(GTX1660, **kw)
    srv.test_clock = clock
    return srv


def _fleet(n=1, **kw) -> Fleet:
    clock = FakeClock()
    kw.setdefault("clock", clock)
    kw.setdefault("sleep", clock.sleep)
    fleet = Fleet([GTX1660] * n, **kw)
    fleet.test_clock = clock
    return fleet


# The pinned SLO scenario every acceptance test below shares: a seeded
# heavy-tailed stream against tiny_a with an SLO of four full micro-batches
# of analytic work.  256 requests span many SLO windows, which is what lets
# bounded backlog (admission) beat the accept-everything baseline.
SLO_BATCHES = 4
MAX_BATCH = 8
N_REQUESTS = 256
SEED = 7


def _slo_s() -> float:
    cap = capacity_rps(GTX1660, "tiny_a", max_batch=MAX_BATCH)
    return SLO_BATCHES * MAX_BATCH / cap


# ---- regression: the no-SLO replay paths are bit-identical ------------------


class TestRegressionBitIdentical:
    """Pinned floats captured from the pre-refactor harness (`git show
    HEAD:src/repro/serve/loadgen.py` before the SLO layer landed).  Exact
    equality on purpose: the refactored flush arithmetic must reduce to the
    old `oldest + max_delay_s` when no request carries a deadline."""

    def test_uniform_replay_unchanged(self):
        r = replay(GTX1660, "tiny_a", 32, 1e7, max_batch=8)
        assert r.throughput_img_s == 409214.91361018503
        assert r.latency_p50_s == 5.6523888888888874e-05
        assert r.latency_p99_s == 7.579851851851851e-05
        assert r.duration_s == 7.81985185185185e-05
        assert r.mean_batch == 8.0
        assert r.energy_per_image_j == 4.625449746666667e-05
        assert r.planner_invocations == 1
        # no SLO in play: the report's SLO accounting stays disarmed
        assert r.slo_s is None and r.attainment is None
        assert (r.shed, r.degraded, r.late) == (0, 0, 0)

    def test_poisson_replay_unchanged(self):
        r = replay(GTX1660, "tiny_a", 24, 2e5, max_batch=4, poisson=True, seed=3)
        assert r.throughput_img_s == 189368.9514480203
        assert r.latency_p50_s == 3.2590017136664413e-05
        assert r.latency_p99_s == 4.269784230528658e-05
        assert r.mean_batch == 4.0

    def test_fleet_replay_unchanged(self):
        r = fleet_replay(
            [GTX1660, GTX1660], ["tiny_a", "tiny_b"], 24, 1e6, max_batch=4, seed=1
        )
        assert r.throughput_img_s == 11765.578254498812
        assert r.latency_p50_s == 3.159666384786543e-05
        assert r.latency_p99_s == 0.0020179627897584235
        assert r.mean_batch == 3.4285714285714284
        assert r.plan_hit_rate == 0.5714285714285714
        assert r.planner_invocations == 3
        per = [(w.worker, w.requests, w.batches, w.busy_s) for w in r.per_worker]
        assert per == [
            ("GTX#0", 15, 4, 7.135778553022167e-05),
            ("GTX#1", 9, 3, 5.3808717380069184e-05),
        ]
        assert r.scale_events == () and r.slo_per_worker == ()


# ---- percentile contract ----------------------------------------------------


class TestPercentile:
    def test_empty_raises_clear_valueerror(self):
        with pytest.raises(ValueError, match="empty sample set"):
            percentile([], 99)

    def test_nearest_rank_above(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        # always an observed value at or above the requested rank
        assert percentile(samples, 50) == 3.0
        assert percentile(samples, 99) == 4.0


# ---- deadlines and priorities on the server ---------------------------------


class TestDeadlines:
    def test_deadline_pulls_flush_earlier_than_max_delay(self):
        srv = _server(max_batch=8, max_delay_s=1.0)
        srv.enqueue("tiny_a", slo_s=1e-4)
        deadline = srv.next_deadline()
        # without the SLO the queue would sit until oldest + 1s
        assert deadline is not None and deadline < 1.0
        # the flush is scheduled with enough slack to execute the batch
        assert deadline <= 1e-4

    def test_invalid_slo_rejected(self):
        srv = _server()
        with pytest.raises(PlanError, match="slo_s must be > 0"):
            srv.enqueue("tiny_a", slo_s=0.0)

    def test_priority_jumps_queue(self):
        srv = _server(max_batch=2, max_delay_s=1.0)
        srv.enqueue("tiny_a")
        srv.enqueue("tiny_a")
        srv.enqueue("tiny_a")
        urgent = srv.enqueue("tiny_a", priority=5)
        results = srv.step(force=True)
        first_batch = [r.request_id for r in results[:2]]
        assert urgent in first_batch


# ---- admission control ------------------------------------------------------


class TestAdmission:
    def test_policy_and_margin_validation(self):
        with pytest.raises(PlanError, match="unknown admission policy"):
            AdmissionController("panic")
        with pytest.raises(PlanError, match="margin must be > 0"):
            AdmissionController("shed", margin=0.0)

    def test_resolver(self):
        assert admission_controller(None) is None
        assert admission_controller("none") is None
        assert admission_controller("") is None
        ctrl = AdmissionController("shed")
        assert admission_controller(ctrl) is ctrl
        assert admission_controller("degrade").policy == "degrade"

    def test_accepts_on_idle_server(self):
        srv = _server()
        ctrl = AdmissionController("degrade")
        decision = ctrl.decide(srv, "tiny_a", DType.FP32, 1.0)
        assert decision.action == "accept" and decision.admitted
        assert ctrl.stats.offered == ctrl.stats.accepted == 1

    def test_degrades_then_sheds_as_backlog_grows(self):
        srv = _server(max_batch=4, max_delay_s=1.0)
        ctrl = AdmissionController("degrade")
        # a tight SLO: two full micro-batches of fp32 work
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
        slo = 2 * 4 / cap
        actions = []
        for _ in range(64):
            d = ctrl.decide(srv, "tiny_a", DType.FP32, slo)
            actions.append(d.action)
            if d.admitted:
                dtype = DType.FP32 if d.action == "accept" else ctrl.degrade_dtype
                srv.enqueue("tiny_a", dtype=dtype, slo_s=slo)
        assert actions[0] == "accept"
        # the projection crosses the SLO in fp32 first (degrade), then in
        # int8 too (shed) — all three outcomes appear, in that order
        assert "degrade" in actions and "shed" in actions
        assert actions.index("degrade") < actions.index("shed")
        assert ctrl.stats.offered == 64
        assert ctrl.stats.shed == actions.count("shed")

    def test_shed_policy_never_degrades(self):
        srv = _server(max_batch=4, max_delay_s=1.0)
        ctrl = AdmissionController("shed")
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
        slo = 2 * 4 / cap
        for _ in range(64):
            d = ctrl.decide(srv, "tiny_a", DType.FP32, slo)
            if d.admitted:
                srv.enqueue("tiny_a", slo_s=slo)
        assert ctrl.stats.degraded == 0
        assert ctrl.stats.shed > 0


# ---- the acceptance criteria ------------------------------------------------


class TestAttainment:
    def test_admission_strictly_improves_attainment_at_16x(self):
        """The headline claim: on the seeded 16x-overload heavy-tailed
        stream, admission control + deadline-aware flushing beats the
        no-admission baseline on SLO attainment."""
        slo = _slo_s()
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=MAX_BATCH)
        kw = dict(arrival="lognormal", slo_s=slo, max_batch=MAX_BATCH, seed=SEED)
        base = replay(GTX1660, "tiny_a", N_REQUESTS, cap * 16, **kw)
        adm = replay(
            GTX1660, "tiny_a", N_REQUESTS, cap * 16, admission="degrade", **kw
        )
        assert base.shed == 0
        assert adm.shed > 0
        assert adm.attained > base.attained
        assert adm.attainment > base.attainment

    def test_attainment_curve_shape(self):
        pts = attainment_curve(
            GTX1660,
            "tiny_a",
            slo_s=_slo_s(),
            overloads=(0.5, 1.0, 2.0, 4.0, 10.0, 16.0, 50.0, 100.0),
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        att = [p.attainment for p in pts]
        # monotonically non-increasing, 100% under capacity
        assert all(a >= b for a, b in zip(att, att[1:])), att
        assert att[0] == 1.0
        # at 10x overload the degrade path is live
        ten_x = pts[4]
        assert ten_x.overload == 10.0 and ten_x.degraded > 0
        # every offered request lands in exactly one bucket
        for p in pts:
            assert p.served + p.shed == p.offered
            assert p.attained + p.late == p.served

    def test_attainment_curve_pinned(self):
        """Exact pinned counts for the seeded scenario — any cost-model or
        harness change that moves these must be deliberate."""
        pts = attainment_curve(
            GTX1660,
            "tiny_a",
            slo_s=_slo_s(),
            overloads=(0.5, 1.0, 2.0, 4.0, 10.0, 16.0, 50.0, 100.0),
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        assert [p.attained for p in pts] == [256, 191, 94, 65, 41, 33, 32, 32]
        assert [p.shed for p in pts] == [0, 36, 128, 176, 208, 216, 223, 223]
        assert [p.degraded for p in pts] == [0, 16, 32, 40, 16, 8, 1, 1]
        assert [p.late for p in pts] == [0, 29, 34, 15, 7, 7, 1, 1]

    def test_attainment_curve_replay_deterministic(self):
        """The 1x-100x curve replayed twice is identical, point for point
        (frozen dataclass equality covers every count and the p99 float)."""
        kw = dict(
            slo_s=_slo_s(),
            overloads=(1.0, 4.0, 16.0, 100.0),
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        first = attainment_curve(GTX1660, "tiny_a", **kw)
        second = attainment_curve(GTX1660, "tiny_a", **kw)
        assert first == second


class TestReplayDeterminism:
    def test_admission_replay_twice_identical(self):
        kw = dict(
            arrival="pareto",
            slo_s=_slo_s(),
            admission="degrade",
            max_batch=MAX_BATCH,
            seed=SEED,
        )
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=MAX_BATCH)
        a = replay(GTX1660, "tiny_a", 96, cap * 8, **kw)
        b = replay(GTX1660, "tiny_a", 96, cap * 8, **kw)
        assert a.latencies_s == b.latencies_s
        assert (a.attained, a.shed, a.degraded, a.late) == (
            b.attained,
            b.shed,
            b.degraded,
            b.late,
        )
        assert a.throughput_img_s == b.throughput_img_s

    def test_fleet_autoscale_replay_twice_identical(self):
        kw = dict(
            max_batch=4,
            arrival="lognormal",
            slo_s=_slo_s(),
            admission="degrade",
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=4, grow_backlog_s=2e-5,
                shrink_backlog_s=1e-6,
            ),
            seed=SEED,
        )
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
        a = fleet_replay([GTX1660], ["tiny_a"], 64, cap * 8, **kw)
        b = fleet_replay([GTX1660], ["tiny_a"], 64, cap * 8, **kw)
        assert a.latencies_s == b.latencies_s
        assert a.scale_events == b.scale_events
        assert a.slo_per_worker == b.slo_per_worker
        assert (a.attained, a.shed, a.degraded) == (b.attained, b.shed, b.degraded)


# ---- autoscaler -------------------------------------------------------------


class TestAutoscaler:
    def _loaded_fleet(self):
        """One-worker fleet with a backlog of deadline-stamped requests (the
        eager planning makes the queue-cost estimate non-zero)."""
        fleet = _fleet(1, max_batch=4, max_delay_s=1.0)
        for _ in range(16):
            fleet.enqueue("tiny_a", slo_s=1.0)
        return fleet

    def test_policy_validation(self):
        fleet = _fleet(1)
        with pytest.raises(PlanError, match="min_workers"):
            AutoscalePolicy(min_workers=0).bind(fleet)
        with pytest.raises(PlanError, match="max_workers"):
            AutoscalePolicy(min_workers=4, max_workers=2).bind(fleet)
        with pytest.raises(PlanError, match="grow_backlog_s > shrink_backlog_s"):
            AutoscalePolicy(grow_backlog_s=1e-6, shrink_backlog_s=1e-3).bind(fleet)
        with pytest.raises(PlanError, match="cooldown_s"):
            AutoscalePolicy(cooldown_s=-1.0).bind(fleet)

    def test_grows_under_backlog(self):
        fleet = self._loaded_fleet()
        scaler = AutoscalePolicy(
            max_workers=3, grow_backlog_s=1e-7, shrink_backlog_s=1e-8
        ).bind(fleet)
        event = scaler.observe(0.0)
        assert event is not None and event.action == "grow"
        assert event.workers == 2 and len(fleet.workers) == 2
        # a second observation under the same backlog grows to the cap...
        assert scaler.observe(0.0).workers == 3
        # ...and then holds: max_workers is a hard bound
        assert scaler.observe(0.0) is None
        assert scaler.peak_workers == 3

    def test_shrinks_when_idle(self):
        fleet = self._loaded_fleet()
        scaler = AutoscalePolicy(
            max_workers=2, grow_backlog_s=1e-7, shrink_backlog_s=1e-8
        ).bind(fleet)
        scaler.observe(0.0)
        assert len(fleet.workers) == 2
        # drain everything, then move past any residual device occupancy
        while fleet.pending():
            fleet.step(force=True)
        now = max(w.busy_until for w in fleet.workers) + 1.0
        fleet.test_clock.t = now
        event = scaler.observe(now)
        assert event is not None and event.action == "shrink"
        # the highest-numbered idle worker retires, and its accounting stays
        assert event.worker == "GTX#1" and len(fleet.workers) == 1
        assert fleet.retired[0].name == "GTX#1"
        assert any(w.worker == "GTX#1" for w in fleet.stats().per_worker)
        # min_workers is a floor: no further shrink
        assert scaler.observe(now + 1.0) is None

    def test_cooldown_rate_limits_actions(self):
        fleet = self._loaded_fleet()
        scaler = AutoscalePolicy(
            max_workers=4, grow_backlog_s=1e-7, shrink_backlog_s=1e-8,
            cooldown_s=0.5,
        ).bind(fleet)
        assert scaler.observe(0.0).action == "grow"
        # still in cooldown: the signal is ignored even though backlog is high
        assert scaler.observe(0.25) is None
        assert scaler.in_cooldown(0.25)
        assert scaler.observe(0.5).action == "grow"
        assert [e.t for e in scaler.events] == [0.0, 0.5]

    def test_remove_worker_guards(self):
        fleet = _fleet(2, max_batch=4, max_delay_s=1.0)
        lone = _fleet(1)
        with pytest.raises(PlanError, match="last worker"):
            lone.remove_worker(lone.workers[0])
        fleet.enqueue("tiny_a", slo_s=1.0)
        busy = next(w for w in fleet.workers if w.server.pending())
        with pytest.raises(PlanError, match="busy worker"):
            fleet.remove_worker(busy)
        with pytest.raises(PlanError, match="not an active worker"):
            fleet.remove_worker(lone.workers[0])

    def test_fleet_replay_grows_and_settles_back(self):
        cap = capacity_rps(GTX1660, "tiny_a", max_batch=4)
        r = fleet_replay(
            [GTX1660],
            ["tiny_a"],
            64,
            cap * 8,
            max_batch=4,
            arrival="lognormal",
            slo_s=_slo_s(),
            autoscale=AutoscalePolicy(
                min_workers=1, max_workers=4, grow_backlog_s=2e-5,
                shrink_backlog_s=1e-6,
            ),
            seed=SEED,
        )
        actions = [e.action for e in r.scale_events]
        assert "grow" in actions
        assert r.peak_workers > 1
        # after the stream drains, the settling pass retires idle capacity
        assert actions and actions[-1] == "shrink"
        assert r.scale_events[-1].workers == 1


# ---- arrival generators (hypothesis) ----------------------------------------

gen_args = dict(max_examples=30, deadline=None)


class TestGenerators:
    @settings(**gen_args)
    @given(
        kind=st.sampled_from(ARRIVAL_KINDS),
        n=st.integers(min_value=1, max_value=200),
        rate=st.floats(min_value=1.0, max_value=1e6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_sorted_nonnegative_reproducible(self, kind, n, rate, seed):
        times = generate_arrivals(kind, n, rate, seed=seed)
        assert len(times) == n
        assert all(t >= 0 and math.isfinite(t) for t in times)
        assert times == sorted(times)
        assert generate_arrivals(kind, n, rate, seed=seed) == times

    @settings(**gen_args)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_heavy_tail_mean_rate(self, rate, seed):
        """Lognormal/Pareto gaps have mean 1/rate: the realized rate of a
        long stream lands near the spec (law of large numbers, wide
        tolerance for the heavy tail)."""
        n = 600
        for times in (
            lognormal_arrival_times(n, rate, seed=seed),
            pareto_arrival_times(n, rate, seed=seed),
        ):
            realized = (n - 1) / (times[-1] - times[0])
            assert realized == pytest.approx(rate, rel=0.35)

    @settings(**gen_args)
    @given(
        rate=st.floats(min_value=10.0, max_value=1e4),
        amplitude=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_diurnal_mean_rate(self, rate, amplitude, seed):
        """The sinusoidal modulation integrates out over many periods: the
        realized mean rate matches the spec within CLT tolerance."""
        n = 400
        period = n / rate / 10  # ~10 full periods over the stream
        times = diurnal_arrival_times(
            n, rate, period_s=period, amplitude=amplitude, seed=seed
        )
        realized = (n - 1) / (times[-1] - times[0])
        assert realized == pytest.approx(rate, rel=0.2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown arrival kind"):
            generate_arrivals("bursty", 8, 100.0)

    def test_different_seeds_differ(self):
        assert lognormal_arrival_times(32, 100.0, seed=0) != lognormal_arrival_times(
            32, 100.0, seed=1
        )


# ---- trace files ------------------------------------------------------------

_trace_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from(["tiny_a", "tiny_b"]),
        st.sampled_from(["fp32", "int8"]),
        st.one_of(st.none(), st.floats(min_value=1e-6, max_value=1.0)),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=20,
)


class TestTraces:
    @settings(**gen_args)
    @given(raw=_trace_strategy)
    def test_round_trip_byte_identical(self, raw, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("trace")
        # cumulative arrival times keep the trace sorted
        t = 0.0
        reqs = []
        for gap, model, dtype, slo, prio in raw:
            t += gap
            reqs.append(TraceRequest(t, model, dtype=dtype, slo_s=slo, priority=prio))
        first = tmp / "a.jsonl"
        second = tmp / "b.jsonl"
        write_trace(first, reqs)
        parsed = read_trace(first)
        assert parsed == reqs
        write_trace(second, parsed)
        assert first.read_bytes() == second.read_bytes()

    def test_validation(self, tmp_path):
        with pytest.raises(PlanError, match="non-decreasing"):
            write_trace(
                tmp_path / "t.jsonl",
                [TraceRequest(1.0, "tiny_a"), TraceRequest(0.5, "tiny_a")],
            )
        with pytest.raises(PlanError, match="negative arrival"):
            write_trace(tmp_path / "t.jsonl", [TraceRequest(-1.0, "tiny_a")])
        with pytest.raises(PlanError, match="slo_s must be > 0"):
            write_trace(
                tmp_path / "t.jsonl", [TraceRequest(0.0, "tiny_a", slo_s=0.0)]
            )
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(PlanError, match="malformed trace line"):
            read_trace(bad)

    def test_trace_driven_replay_with_mixed_slo(self, tmp_path):
        """Per-entry SLOs win over the global default, and best-effort
        entries (no SLO) count as attained when served."""
        reqs = [
            TraceRequest(i * 1e-4, "tiny_a", slo_s=1.0 if i % 2 else None)
            for i in range(16)
        ]
        path = write_trace(tmp_path / "mixed.jsonl", reqs)
        r = replay(GTX1660, trace=read_trace(path), max_batch=4)
        assert r.n_requests == 16
        assert r.slo_s is not None  # armed by the entries that carry one
        # stream is unloaded: everything makes its deadline (or had none)
        assert r.attained == 16 and r.late == 0
        assert r.attainment == 1.0
