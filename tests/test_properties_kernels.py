"""Property-based tests: simulated kernels vs golden reference on random geometry.

Hypothesis drives layer geometry, tile sizes and precision; every draw must
satisfy (1) functional equivalence with the reference operators, (2) exact
agreement between the measured-convention estimators and the metered bytes,
(3) the output-stationary invariant (OFMs written exactly once).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import dw_spec, pw_spec, random_ifm, ref_layer
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.core.tiling import DwTiling, PwTiling
from repro.gpu.specs import RTX_A4000
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_fcm_kernel, build_lbl_kernel
from repro.planner.costs import dw_gma, pw_gma
from repro.planner.fcm_costs import fcm_gma

_DTYPES = st.sampled_from([DType.FP32, DType.INT8])


def _assert_matches(res, ref, dtype):
    if dtype is DType.INT8:
        np.testing.assert_array_equal(res.output, ref)
    else:
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    c=st.sampled_from([3, 8, 16]),
    m=st.sampled_from([4, 8, 24]),
    h=st.integers(5, 14),
    stride=st.integers(1, 2),
    tile_m=st.sampled_from([1, 4, 16, 64]),
    tile_hw=st.sampled_from([3, 16, 64, 1024]),
    dtype=_DTYPES,
)
def test_pw_kernel_total_correctness(c, m, h, stride, tile_m, tile_hw, dtype):
    spec = pw_spec(c_in=c, c_out=m, h=h, w=h, stride=stride, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    res = build_lbl_kernel(params, {"tile_m": tile_m, "tile_hw": tile_hw}).simulate(
        x, RTX_A4000
    )
    _assert_matches(res, ref_layer(params, x), dtype)
    tm = min(tile_m, m)
    thw = min(tile_hw, spec.out_h * spec.out_w)
    assert res.counters.total_bytes == pw_gma(
        spec, PwTiling(tm, thw), "measured"
    ).total_bytes
    assert res.counters.global_writes["ofm"] == spec.ofm.nbytes


@settings(max_examples=30, deadline=None)
@given(
    c=st.sampled_from([2, 8, 12]),
    h=st.integers(6, 16),
    kernel=st.sampled_from([3, 5]),
    stride=st.integers(1, 2),
    tile_c=st.sampled_from([1, 4, 16]),
    tile_h=st.sampled_from([2, 5, 16]),
    dtype=_DTYPES,
)
def test_dw_kernel_total_correctness(c, h, kernel, stride, tile_c, tile_h, dtype):
    spec = dw_spec(c=c, h=h, w=h, kernel=kernel, stride=stride, dtype=dtype)
    params = make_layer_params(spec)
    x = random_ifm(spec)
    res = build_lbl_kernel(
        params, {"tile_c": tile_c, "tile_h": tile_h, "tile_w": tile_h}
    ).simulate(x, RTX_A4000)
    _assert_matches(res, ref_layer(params, x), dtype)
    t = DwTiling(min(tile_c, c), min(tile_h, spec.out_h), min(tile_h, spec.out_w))
    assert res.counters.total_bytes == dw_gma(spec, t, "measured").total_bytes
    assert res.counters.global_writes["ofm"] == spec.ofm.nbytes


@settings(max_examples=25, deadline=None)
@given(
    c=st.sampled_from([4, 8]),
    mid=st.sampled_from([8, 16]),
    h=st.integers(6, 14),
    dw_stride=st.integers(1, 2),
    tile_f=st.sampled_from([2, 8, 32]),
    tile_h=st.sampled_from([2, 4, 16]),
    dtype=_DTYPES,
)
def test_pwdw_r_total_correctness(c, mid, h, dw_stride, tile_f, tile_h, dtype):
    pw = pw_spec(c_in=c, c_out=mid, h=h, w=h, dtype=dtype)
    dw = dw_spec(c=mid, h=h, w=h, stride=dw_stride, dtype=dtype)
    p1 = make_layer_params(pw)
    p2 = chain_quant(p1, dw)
    x = random_ifm(pw)
    tiling = {"tile_f": tile_f, "tile_h": tile_h, "tile_w": tile_h}
    res = build_fcm_kernel(FcmType.PWDW_R, p1, p2, tiling).simulate(x, RTX_A4000)
    _assert_matches(res, ref_layer(p2, ref_layer(p1, x)), dtype)
    cost = fcm_gma(FcmType.PWDW_R, pw, dw, tiling, "measured")
    assert res.counters.total_bytes == cost.gma.total_bytes
    assert res.counters.redundant_macs == cost.redundant_macs


@settings(max_examples=20, deadline=None)
@given(
    c=st.sampled_from([4, 8]),
    mid=st.sampled_from([6, 16]),
    m=st.sampled_from([4, 12]),
    h=st.integers(5, 12),
    tile_hw=st.sampled_from([4, 16, 256]),
    tile_m=st.sampled_from([2, 8, 64]),
    dtype=_DTYPES,
)
def test_pwpw_total_correctness(c, mid, m, h, tile_hw, tile_m, dtype):
    pw1 = pw_spec("pw1", c_in=c, c_out=mid, h=h, w=h, dtype=dtype)
    pw2 = pw_spec("pw2", c_in=mid, c_out=m, h=h, w=h, dtype=dtype)
    p1 = make_layer_params(pw1)
    p2 = chain_quant(p1, pw2)
    x = random_ifm(pw1)
    tiling = {"tile_hw": tile_hw, "tile_m": tile_m}
    res = build_fcm_kernel(FcmType.PWPW, p1, p2, tiling).simulate(x, RTX_A4000)
    _assert_matches(res, ref_layer(p2, ref_layer(p1, x)), dtype)
    cost = fcm_gma(FcmType.PWPW, pw1, pw2, tiling, "measured")
    assert res.counters.total_bytes == cost.gma.total_bytes


@settings(max_examples=20, deadline=None)
@given(
    c=st.sampled_from([4, 8]),
    m=st.sampled_from([4, 16]),
    h=st.integers(6, 14),
    dw_stride=st.integers(1, 2),
    tile_h=st.sampled_from([2, 4, 16]),
    tile_m=st.sampled_from([2, 8, 64]),
    dtype=_DTYPES,
)
def test_dwpw_total_correctness(c, m, h, dw_stride, tile_h, tile_m, dtype):
    dw = dw_spec(c=c, h=h, w=h, stride=dw_stride, dtype=dtype)
    pw = pw_spec(c_in=c, c_out=m, h=dw.out_h, w=dw.out_w, dtype=dtype)
    p1 = make_layer_params(dw)
    p2 = chain_quant(p1, pw)
    x = random_ifm(dw)
    tiling = {"tile_h": tile_h, "tile_w": tile_h, "tile_m": tile_m}
    res = build_fcm_kernel(FcmType.DWPW, p1, p2, tiling).simulate(x, RTX_A4000)
    _assert_matches(res, ref_layer(p2, ref_layer(p1, x)), dtype)
    cost = fcm_gma(FcmType.DWPW, dw, pw, tiling, "measured")
    assert res.counters.total_bytes == cost.gma.total_bytes
    assert res.counters.redundant_macs == 0
