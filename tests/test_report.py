"""Report generator smoke test (runs a trimmed end-to-end pipeline)."""

from __future__ import annotations

from repro.experiments.report import generate_report, main


def test_generate_report_contains_all_artifacts():
    text = generate_report()
    for marker in (
        "Figure 1", "Table II (FP32)", "Table II (INT8)", "Table III",
        "Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figures 10/11",
    ):
        assert marker in text, marker


def test_main_writes_file(tmp_path):
    out = tmp_path / "report.md"
    assert main([str(out)]) == 0
    assert out.exists() and out.stat().st_size > 1000
