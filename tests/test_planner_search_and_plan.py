"""Tile search and whole-model planning tests."""

from __future__ import annotations

import pytest

from helpers import dw_spec, pw_spec
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.core.tiling import DwTiling, PwTiling
from repro.errors import PlanError
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000, GpuSpec
from repro.ir.blocks import dsc_block, inverted_residual_block, standard_conv
from repro.ir.graph import ModelGraph
from repro.planner.costs import dw_feasible, pw_feasible
from repro.planner.fcm_costs import fcm_feasible
from repro.planner.plan import GlueStep, LblStep, StdStep
from repro.planner.planner import FusePlanner
from repro.planner.search import best_fcm_tiling, best_lbl_tiling


class TestLblSearch:
    def test_pw_result_feasible_and_warp_aligned(self):
        spec = pw_spec(c_in=32, c_out=64, h=56, w=56)
        r = best_lbl_tiling(spec, RTX_A4000)
        t = PwTiling(r.tiling["tile_m"], r.tiling["tile_hw"])
        assert pw_feasible(spec, t, RTX_A4000)
        assert (r.tiling["tile_m"] * r.tiling["tile_hw"]) % RTX_A4000.warp_size == 0

    def test_dw_result_feasible(self):
        spec = dw_spec(c=32, h=56, w=56)
        r = best_lbl_tiling(spec, GTX1660)
        t = DwTiling(r.tiling["tile_c"], r.tiling["tile_h"], r.tiling["tile_w"])
        assert dw_feasible(spec, t, GTX1660)

    def test_search_minimizes(self):
        """No candidate in the same vocabulary beats the winner."""
        from repro.planner.costs import pw_gma

        spec = pw_spec(c_in=16, c_out=64, h=28, w=28)
        r = best_lbl_tiling(spec, ORIN)
        for tm in (8, 16, 32, 64):
            for thw in (32, 64, 196, 784):
                t = PwTiling(tm, thw)
                if not pw_feasible(spec, t, ORIN):
                    continue
                if (tm * thw) % ORIN.warp_size != 0:
                    continue
                assert pw_gma(spec, t).total_bytes >= r.gma_bytes

    def test_standard_conv_rejected(self):
        from repro.ir.layers import ConvKind, ConvSpec

        std = ConvSpec("s", ConvKind.STANDARD, 3, 8, 16, 16, kernel=3, padding=1)
        with pytest.raises(PlanError):
            best_lbl_tiling(std, RTX_A4000)

    def test_infeasible_layer_raises(self):
        gpu = GpuSpec(
            name="nano", compute_capability="0", sm_count=100000, cuda_cores=200000,
            l1_kb=1, shared_kb=1, l2_mb=0.1, dram="X", dram_bw_gbps=1, clock_ghz=1,
        )
        with pytest.raises(PlanError):
            best_lbl_tiling(pw_spec(), gpu)


class TestFcmSearch:
    def test_result_feasible(self):
        pw = pw_spec(c_in=16, c_out=64, h=56, w=56)
        dw = dw_spec(c=64, h=56, w=56)
        r = best_fcm_tiling(FcmType.PWDW_R, pw, dw, RTX_A4000)
        assert r is not None
        assert fcm_feasible(FcmType.PWDW_R, pw, dw, r.tiling, RTX_A4000)
        assert 0 <= r.redundancy_ratio < 1

    def test_infeasible_returns_none(self, tiny_gpu):
        pw = pw_spec(c_in=64, c_out=512, h=64, w=64)
        dw = dw_spec(c=512, h=64, w=64)
        assert best_fcm_tiling(FcmType.PWDW, pw, dw, tiny_gpu) is None


class TestFusePlanner:
    def _graph(self, dtype=DType.FP32):
        g = ModelGraph("m")
        standard_conv(g, "stem", 3, 32, 112, 112, stride=2, dtype=dtype)
        dsc_block(g, "b1", 32, 64, 56, 56, dtype=dtype)
        dsc_block(g, "b2", 64, 64, 56, 56, dtype=dtype)
        return g

    def test_plan_structure(self):
        plan = FusePlanner(GTX1660).plan(self._graph())
        kinds = [type(s) for s in plan.steps]
        assert StdStep in kinds  # stem preserved
        # Every DW/PW layer appears exactly once across steps.
        names = [n for s in plan.steps for n in getattr(s, "layer_names", ())]
        assert sorted(names) == sorted(
            ["b1_dw", "b1_pw", "b2_dw", "b2_pw"]
        )

    def test_fcm_steps_save_traffic(self):
        plan = FusePlanner(GTX1660).plan(self._graph())
        for s in plan.fcm_steps:
            assert s.est_savings_bytes > 0
            assert s.est_gma_bytes < s.est_lbl_gma_bytes

    def test_layers_join_at_most_one_fcm(self):
        plan = FusePlanner(ORIN).plan(self._graph())
        fused = [n for s in plan.fcm_steps for n in s.layer_names]
        assert len(fused) == len(set(fused))

    def test_retype_on_the_fly(self):
        plan = FusePlanner(GTX1660).plan(self._graph(), dtype=DType.INT8)
        assert plan.dtype is DType.INT8
        for s in plan.steps:
            if isinstance(s, LblStep):
                assert s.spec.dtype is DType.INT8

    def test_fused_fraction_bounds(self):
        plan = FusePlanner(ORIN).plan(self._graph())
        assert 0.0 <= plan.fused_layer_fraction <= 1.0

    def test_describe_runs(self):
        plan = FusePlanner(GTX1660).plan(self._graph())
        text = plan.describe()
        assert "ExecutionPlan" in text and "GMA" in text

    def test_residual_graph_planned(self):
        g = ModelGraph("ir")
        first = standard_conv(g, "stem", 3, 16, 56, 56, stride=1)
        last = inverted_residual_block(g, "ir1", 16, 16, 56, 56, after=first)
        inverted_residual_block(g, "ir2", 16, 24, 56, 56, stride=2, after=last)
        plan = FusePlanner(GTX1660).plan(g)
        glue = [s for s in plan.steps if isinstance(s, GlueStep)]
        assert any(s.spec.op == "add" for s in glue)
        # All conv layers accounted for.
        conv_names = {c.name for c in g.conv_layers()}
        planned = {n for s in plan.steps for n in getattr(s, "layer_names", ())}
        planned |= {s.spec.name for s in plan.steps if isinstance(s, StdStep)}
        assert planned == conv_names

    def test_matching_prefers_higher_savings(self):
        """When two candidates share a layer the better one must win."""
        g = ModelGraph("m")
        dsc_block(g, "b1", 16, 96, 56, 56)  # b1_pw is shared by two candidates
        dsc_block(g, "b2", 96, 96, 56, 56)
        plan = FusePlanner(ORIN).plan(g)
        chosen = {tuple(s.layer_names): s for s in plan.fcm_steps}
        assert chosen  # fused something
        planner = FusePlanner(ORIN)
        total = sum(s.est_savings_bytes for s in plan.fcm_steps)
        # Compare against the two mutually exclusive single-pair alternatives.
        for pair in (("b1_dw", "b1_pw"), ("b1_pw", "b2_dw"), ("b2_dw", "b2_pw")):
            first = g.spec(pair[0])
            second = g.spec(pair[1])
            d = planner.evaluate_pair(first, second)
            if d is not None:
                assert total >= d.savings_bytes or tuple(pair) in chosen
