"""Tests for the model IR: layer specs, DAG, block builders, importer."""

from __future__ import annotations

import pytest

from repro.core.dtypes import DType
from repro.errors import ShapeError
from repro.ir.blocks import dsc_block, inverted_residual_block, standard_conv
from repro.ir.graph import GlueSpec, ModelGraph
from repro.ir.importer import import_model
from repro.ir.layers import ConvKind, ConvSpec


class TestConvSpec:
    def test_geometry(self):
        s = ConvSpec("c", ConvKind.STANDARD, 3, 32, 224, 224, kernel=3, stride=2, padding=1)
        assert (s.out_h, s.out_w) == (112, 112)
        assert s.weights_shape == (32, 3, 3, 3)
        assert s.macs == 32 * 3 * 9 * 112 * 112

    def test_pw_macs_and_weights(self):
        s = ConvSpec("p", ConvKind.POINTWISE, 64, 128, 56, 56)
        assert s.weights_shape == (128, 64)
        assert s.macs == 128 * 64 * 56 * 56
        assert s.weights_bytes == 128 * 64 * 4

    def test_dw_preserves_channels(self):
        with pytest.raises(ShapeError):
            ConvSpec("d", ConvKind.DEPTHWISE, 8, 16, 10, 10, kernel=3, padding=1)

    def test_pw_kernel_must_be_one(self):
        with pytest.raises(ShapeError):
            ConvSpec("p", ConvKind.POINTWISE, 8, 8, 10, 10, kernel=3)

    def test_with_dtype(self):
        s = ConvSpec("p", ConvKind.POINTWISE, 8, 8, 10, 10)
        assert s.with_dtype(DType.INT8).weights_bytes == 64

    def test_describe(self):
        s = ConvSpec("p", ConvKind.POINTWISE, 8, 16, 10, 10)
        assert "pw 8->16" in s.describe()


class TestModelGraph:
    def test_linear_chain_and_candidates(self):
        g = ModelGraph("m")
        dsc_block(g, "b1", 8, 16, 16, 16)
        dsc_block(g, "b2", 16, 16, 16, 16)
        g.validate()
        names = [(c.first.name, c.second.name) for c in g.fusion_candidates()]
        assert ("b1_dw", "b1_pw") in names
        assert ("b1_pw", "b2_dw") in names  # cross-block PW->DW pair

    def test_duplicate_name_rejected(self):
        g = ModelGraph("m")
        dsc_block(g, "b", 4, 4, 8, 8)
        with pytest.raises(ShapeError):
            dsc_block(g, "b", 4, 4, 8, 8)

    def test_shape_mismatch_detected(self):
        g = ModelGraph("m")
        g.add(ConvSpec("a", ConvKind.POINTWISE, 4, 8, 8, 8))
        g.add(ConvSpec("b", ConvKind.POINTWISE, 16, 4, 8, 8))  # expects 16 chans
        with pytest.raises(ShapeError):
            g.validate()

    def test_multi_consumer_blocks_fusion(self):
        """A PW whose output feeds two consumers must not be a candidate."""
        g = ModelGraph("m")
        p = g.add(ConvSpec("p", ConvKind.POINTWISE, 4, 8, 8, 8))
        g.add(ConvSpec("d", ConvKind.DEPTHWISE, 8, 8, 8, 8, kernel=3, padding=1), after=p)
        g.add(GlueSpec("branch", "noop", 8 * 8 * 8), after=p)
        firsts = [c.first.name for c in g.fusion_candidates()]
        assert "p" not in firsts

    def test_standard_conv_never_candidate(self):
        g = ModelGraph("m")
        standard_conv(g, "s", 3, 8, 16, 16)
        dsc_block(g, "b", 8, 8, 16, 16)
        firsts = [c.first.name for c in g.fusion_candidates()]
        assert "s" not in firsts

    def test_unknown_layer_lookup(self):
        g = ModelGraph("m")
        with pytest.raises(ShapeError):
            g.spec("nope")


class TestInvertedResidual:
    def test_residual_add_created(self):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 32, 32)
        last = inverted_residual_block(g, "ir", 16, 16, 32, 32, stride=1, after=first)
        assert last == "ir_add"
        add = g.spec("ir_add")
        assert isinstance(add, GlueSpec) and add.op == "add"
        assert set(g.predecessors("ir_add")) == {"stem", "ir_pw_proj"}

    def test_no_residual_on_stride2(self):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 32, 32)
        last = inverted_residual_block(g, "ir", 16, 16, 32, 32, stride=2, after=first)
        assert last == "ir_pw_proj"

    def test_expansion_one_skips_first_pw(self):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 32, 32)
        inverted_residual_block(g, "ir", 16, 24, 32, 32, expansion=1, after=first)
        assert "ir_pw_exp" not in g
        assert "ir_dw" in g

    def test_projection_pw_is_linear(self):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 32, 32)
        inverted_residual_block(g, "ir", 16, 24, 32, 32, after=first)
        proj = g.spec("ir_pw_proj")
        assert proj.epilogue.activation is None


class TestImporter:
    def test_import_and_shapes(self):
        g = import_model(
            {
                "name": "t",
                "input": [8, 16, 16],
                "layers": [
                    {"op": "conv", "kind": "dw", "kernel": 3, "stride": 2},
                    {"op": "conv", "kind": "pw", "out_channels": 32},
                    {"op": "glue", "glue": "gap"},
                ],
            }
        )
        convs = g.conv_layers()
        assert convs[0].out_h == 8
        assert convs[1].in_channels == 8 and convs[1].out_channels == 32

    def test_dtype_applied(self):
        g = import_model(
            {"name": "t", "input": [4, 8, 8],
             "layers": [{"op": "conv", "kind": "pw", "out_channels": 8}]},
            dtype=DType.INT8,
        )
        assert g.conv_layers()[0].dtype is DType.INT8

    def test_malformed(self):
        with pytest.raises(ShapeError):
            import_model({"name": "x", "layers": []})
        with pytest.raises(ShapeError):
            import_model({"name": "x", "input": [1, 2, 3],
                          "layers": [{"op": "warp"}]})
