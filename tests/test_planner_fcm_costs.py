"""FCM estimator tests: Eq. 4 family, measured == simulated per module type."""

from __future__ import annotations

import pytest

from helpers import dw_spec, pw_spec, random_ifm
from repro.core.fcm import FcmType
from repro.core.tiling import ceil_div
from repro.errors import ShapeError
from repro.gpu.specs import ORIN, RTX_A4000
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_fcm_kernel
from repro.planner.fcm_costs import fcm_feasible, fcm_footprints, fcm_gma


def _simulate(fcm_type, first, second, tiling, gpu=RTX_A4000):
    p1 = make_layer_params(first)
    p2 = chain_quant(p1, second)
    x = random_ifm(first)
    return build_fcm_kernel(fcm_type, p1, p2, tiling).simulate(x, gpu)


class TestMeasuredMatchesSimulator:
    def test_dwpw(self):
        dw = dw_spec(c=8, h=14, w=14)
        pw = pw_spec(c_in=8, c_out=24, h=14, w=14)
        tiling = {"tile_h": 5, "tile_w": 5, "tile_m": 8}
        res = _simulate(FcmType.DWPW, dw, pw, tiling)
        cost = fcm_gma(FcmType.DWPW, dw, pw, tiling, "measured")
        assert res.counters.total_bytes == cost.gma.total_bytes
        assert res.counters.total_macs == cost.useful_macs + cost.redundant_macs

    def test_pwdw(self):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12, stride=2)
        res = _simulate(FcmType.PWDW, pw, dw, {"tile_f": 4}, ORIN)
        cost = fcm_gma(FcmType.PWDW, pw, dw, {"tile_f": 4}, "measured")
        assert res.counters.total_bytes == cost.gma.total_bytes

    @pytest.mark.parametrize("stride", [1, 2])
    def test_pwdw_r(self, stride):
        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12, stride=stride)
        tiling = {"tile_f": 8, "tile_h": 3, "tile_w": 3}
        res = _simulate(FcmType.PWDW_R, pw, dw, tiling)
        cost = fcm_gma(FcmType.PWDW_R, pw, dw, tiling, "measured")
        assert res.counters.total_bytes == cost.gma.total_bytes
        assert res.counters.redundant_macs == cost.redundant_macs
        assert res.counters.redundancy_ratio == pytest.approx(cost.redundancy_ratio)

    def test_pwpw(self):
        pw1 = pw_spec("pw1", c_in=8, c_out=24, h=10, w=10)
        pw2 = pw_spec("pw2", c_in=24, c_out=16, h=10, w=10)
        tiling = {"tile_hw": 25, "tile_m": 8}
        res = _simulate(FcmType.PWPW, pw1, pw2, tiling)
        cost = fcm_gma(FcmType.PWPW, pw1, pw2, tiling, "measured")
        assert res.counters.total_bytes == cost.gma.total_bytes


class TestEquation4PaperConvention:
    def test_verbatim_structure(self):
        """Eq. 4 terms on a hand-checkable PWDW_R configuration."""
        pw = pw_spec(c_in=4, c_out=8, h=8, w=8)
        dw = dw_spec(c=8, h=8, w=8, kernel=3, stride=1)
        tiling = {"tile_f": 4, "tile_h": 4, "tile_w": 4}
        cost = fcm_gma(FcmType.PWDW_R, pw, dw, tiling, "paper")
        from repro.core.tiling import overlap_elements

        ovl = overlap_elements(8, 8, 4, 4, 3, 3, 1)
        n_f = ceil_div(8, 4)
        n_sp = 4
        expected_reads = (
            (2 * 4 * ovl + 4 * 64) * n_f + n_sp * (8 * 4) + n_sp * (8 * 9)
        )
        assert cost.gma.reads_elems == expected_reads
        assert cost.gma.writes_elems == 8 * 64

    def test_no_redundancy_without_spatial_tiling(self):
        pw = pw_spec(c_in=4, c_out=8, h=8, w=8)
        dw = dw_spec(c=8, h=8, w=8)
        cost = fcm_gma(
            FcmType.PWDW_R, pw, dw, {"tile_f": 4, "tile_h": 8, "tile_w": 8}, "paper"
        )
        assert cost.redundant_macs == 0

    def test_pair_validation(self):
        pw = pw_spec(c_in=4, c_out=8, h=8, w=8)
        dw = dw_spec(c=16, h=8, w=8)  # channel mismatch
        with pytest.raises(ShapeError):
            fcm_gma(FcmType.PWDW_R, pw, dw, {"tile_f": 4, "tile_h": 4, "tile_w": 4})
        with pytest.raises(ShapeError):
            fcm_gma(FcmType.DWPW, pw, dw, {"tile_h": 4, "tile_w": 4, "tile_m": 4})


class TestFootprintsAndFeasibility:
    def test_comm_buffer_is_the_shared_need(self):
        pw = pw_spec(c_in=8, c_out=32, h=16, w=16)
        dw = dw_spec(c=32, h=16, w=16)
        tiling = {"tile_f": 16, "tile_h": 4, "tile_w": 4}
        _l1, shared, _n = fcm_footprints(FcmType.PWDW_R, pw, dw, tiling)
        assert shared == 16 * 6 * 6 * 4  # tile_f x halo-extended window, fp32

    def test_tile_count(self):
        pw = pw_spec(c_in=8, c_out=32, h=16, w=16)
        dw = dw_spec(c=32, h=16, w=16)
        _l1, _s, n = fcm_footprints(
            FcmType.PWDW_R, pw, dw, {"tile_f": 16, "tile_h": 4, "tile_w": 4}
        )
        assert n == 2 * 4 * 4

    def test_infeasible_when_comm_exceeds_shared(self, tiny_gpu):
        pw = pw_spec(c_in=16, c_out=128, h=32, w=32)
        dw = dw_spec(c=128, h=32, w=32)
        assert not fcm_feasible(
            FcmType.PWDW, pw, dw, {"tile_f": 128}, tiny_gpu
        )

    def test_occupancy_constraint(self):
        pw = pw_spec(c_in=8, c_out=16, h=8, w=8)
        dw = dw_spec(c=16, h=8, w=8)
        # Single tile -> one block -> violates #tiles >= 48 SMs on RTX.
        assert not fcm_feasible(
            FcmType.PWDW_R, pw, dw, {"tile_f": 16, "tile_h": 8, "tile_w": 8}, RTX_A4000
        )

    def test_int8_widens_feasibility(self, tiny_gpu):
        """Paper §VI-A: halved elements let bigger tiles fit."""
        from repro.core.dtypes import DType

        pw32 = pw_spec(c_in=16, c_out=64, h=16, w=16)
        dw32 = dw_spec(c=64, h=16, w=16)
        # commBuffer = tile_f*16*16 elems: 16 KiB at FP32 (> 8 KiB shared on
        # tiny_gpu), 4 KiB at INT8 (fits).
        tiling = {"tile_f": 16}
        fits32 = fcm_feasible(FcmType.PWDW, pw32, dw32, tiling, tiny_gpu)
        fits8 = fcm_feasible(
            FcmType.PWDW,
            pw32.with_dtype(DType.INT8),
            dw32.with_dtype(DType.INT8),
            tiling,
            tiny_gpu,
        )
        assert not fits32 and fits8
