"""Chain fusion: IR legality, cost-model reduction, DP planner, kernel, serving."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import dw_spec, pw_spec, random_ifm, ref_layer
from repro.core.chain import FusedChain, chain_fcm_type, composed_receptive_field
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.errors import PlanError, ShapeError, UnsupportedError
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000
from repro.ir.blocks import inverted_residual_block, standard_conv
from repro.ir.graph import ModelGraph
from repro.kernels.fused_chain import FusedChainKernel
from repro.kernels.params import chain_quant, make_layer_params
from repro.kernels.registry import build_chain_kernel
from repro.planner.analytic import chain_counters
from repro.planner.chain_costs import (
    chain_feasible,
    chain_footprints,
    chain_gma,
    chain_tiling_keys,
)
from repro.planner.fcm_costs import fcm_feasible, fcm_footprints, fcm_gma
from repro.planner.plan import ChainStep, StdStep
from repro.planner.planner import FusePlanner
from repro.planner.search import best_chain_tiling, best_lbl_tiling


def _pw(name, c_in, c_out, h=16, w=16, dtype=DType.FP32, stride=1):
    return pw_spec(name, c_in=c_in, c_out=c_out, h=h, w=w, dtype=dtype, stride=stride)


def _dw(name, c, h=16, w=16, dtype=DType.FP32, stride=1):
    return dw_spec(name, c=c, h=h, w=w, dtype=dtype, stride=stride)


def _pdp_chain(dtype=DType.FP32, h=16):
    """The canonical inverted-residual PW->DW->PW chain."""
    return FusedChain(
        (
            _pw("e", 8, 32, h, h, dtype),
            _dw("d", 32, h, h, dtype),
            _pw("p", 32, 16, h, h, dtype),
        )
    )


class TestFusedChainIR:
    def test_legal_chains(self):
        c = _pdp_chain()
        assert c.length == 3 and c.kinds == "pw-dw-pw"
        assert c.layer_names == ("e", "d", "p")
        assert c.has_interior_halo
        FusedChain((_dw("d", 8), _pw("p", 8, 16), _pw("q", 16, 8)))

    def test_rejects_short_and_illegal(self):
        with pytest.raises(ShapeError):
            FusedChain((_pw("p", 8, 16),))
        with pytest.raises(ShapeError):  # dw->dw adjacency
            FusedChain((_dw("a", 8), _dw("b", 8)))
        with pytest.raises(ShapeError):  # shape mismatch
            FusedChain((_pw("p", 8, 16), _dw("d", 32)))
        with pytest.raises(ShapeError):  # mixed precision
            FusedChain((_pw("p", 8, 16), _dw("d", 16, dtype=DType.INT8)))
        with pytest.raises(ShapeError):  # standard conv member
            from repro.ir.layers import ConvKind, ConvSpec

            std = ConvSpec("s", ConvKind.STANDARD, 16, 16, 16, 16, kernel=3, padding=1)
            FusedChain((_pw("p", 8, 16), std))

    def test_pairwise_type_mapping(self):
        assert chain_fcm_type(FusedChain((_dw("d", 8), _pw("p", 8, 16)))) is FcmType.DWPW
        pd = FusedChain((_pw("p", 8, 16), _dw("d", 16)))
        assert chain_fcm_type(pd) is FcmType.PWDW
        assert chain_fcm_type(pd, redundant=True) is FcmType.PWDW_R
        with pytest.raises(UnsupportedError):
            chain_fcm_type(_pdp_chain())

    def test_receptive_field_composition(self):
        c = _pdp_chain()
        k, s = composed_receptive_field(c.specs)
        assert (k, s) == (3, 1)  # pw(1,1) o dw(3,1) o pw(1,1)
        k, s = composed_receptive_field((_dw("a", 8, stride=2), _dw("b", 8)))
        assert (k, s) == (3 + 2 * 2, 2)


class TestChainCostReduction:
    """Length-2 chains must reproduce the pairwise Eq. 4 family exactly."""

    CASES = [
        (FcmType.DWPW, (_dw("d", 16, 28, 28), _pw("p", 16, 32, 28, 28)),
         {"tile_h": 4, "tile_w": 8, "tile_m": 16}),
        (FcmType.DWPW, (_dw("d", 16, 28, 28, stride=2), _pw("p", 16, 32, 14, 14)),
         {"tile_h": 7, "tile_w": 14, "tile_m": 32}),
        (FcmType.PWDW, (_pw("p", 8, 32, 28, 28), _dw("d", 32, 28, 28)),
         {"tile_f": 8}),
        (FcmType.PWDW_R, (_pw("p", 8, 32, 28, 28), _dw("d", 32, 28, 28)),
         {"tile_f": 16, "tile_h": 4, "tile_w": 4}),
        (FcmType.PWDW_R, (_pw("p", 8, 32, 28, 28), _dw("d", 32, 28, 28, stride=2)),
         {"tile_f": 32, "tile_h": 7, "tile_w": 7}),
        (FcmType.PWPW, (_pw("p", 8, 32, 28, 28), _pw("q", 32, 16, 28, 28)),
         {"tile_hw": 49, "tile_m": 16}),
    ]

    @pytest.mark.parametrize("convention", ["paper", "measured"])
    @pytest.mark.parametrize("fcm_type,specs,tiling", CASES)
    def test_len2_reproduces_fcm_gma(self, fcm_type, specs, tiling, convention):
        chain = FusedChain(specs)
        cg = chain_gma(chain, tiling, convention)
        fg = fcm_gma(fcm_type, specs[0], specs[1], tiling, convention)
        assert cg == fg

    @pytest.mark.parametrize("fcm_type,specs,tiling", CASES)
    def test_len2_reproduces_footprints_and_feasibility(self, fcm_type, specs, tiling):
        chain = FusedChain(specs)
        assert chain_footprints(chain, tiling) == fcm_footprints(
            fcm_type, specs[0], specs[1], tiling
        )
        for gpu in (GTX1660, ORIN, RTX_A4000):
            assert chain_feasible(chain, tiling, gpu) == fcm_feasible(
                fcm_type, specs[0], specs[1], tiling, gpu
            )

    @pytest.mark.parametrize("convention", ["paper", "measured"])
    def test_general_model_reduces_to_dwpw(self, convention):
        """The compositional model itself (not dispatch) matches DWPW exactly:
        the chain vocabulary coincides with DWPW's, so both paths must agree."""
        from repro.planner.chain_costs import _chain_gma_general

        dw, pw = _dw("d", 16, 28, 28), _pw("p", 16, 32, 28, 28)
        for th, tw, tm in [(4, 8, 16), (7, 28, 32), (28, 28, 8)]:
            tiling = {"tile_h": th, "tile_w": tw, "tile_m": tm}
            assert _chain_gma_general(FusedChain((dw, pw)), tiling, convention) == \
                fcm_gma(FcmType.DWPW, dw, pw, tiling, convention)

    def test_tiling_keys(self):
        assert chain_tiling_keys(_pdp_chain()) == ("tile_h", "tile_w", "tile_m")
        ends_dw = FusedChain((_pw("p", 8, 16), _dw("d", 16)))
        assert chain_tiling_keys(ends_dw) == ("tile_h", "tile_w")

    def test_pure_pw_chain_has_no_redundancy(self):
        chain = FusedChain(
            (_pw("a", 8, 16), _pw("b", 16, 32), _pw("c", 32, 8))
        )
        cost = chain_gma(chain, {"tile_h": 4, "tile_w": 4, "tile_m": 8}, "measured")
        assert cost.redundant_macs == 0
        assert cost.useful_macs == chain.macs

    def test_interior_halo_produces_redundancy(self):
        cost = chain_gma(
            _pdp_chain(), {"tile_h": 4, "tile_w": 4, "tile_m": 16}, "measured"
        )
        assert cost.redundant_macs > 0
        assert 0 < cost.redundancy_ratio < 1


class TestChainSearchAndDP:
    def test_best_chain_tiling_feasible(self):
        chain = _pdp_chain(h=32)
        res = best_chain_tiling(chain, ORIN)
        assert res is not None
        assert chain_feasible(chain, res.tiling, ORIN)
        assert set(res.tiling) == set(chain_tiling_keys(chain))

    def test_best_chain_tiling_infeasible_returns_none(self, tiny_gpu):
        chain = FusedChain(
            (
                _pw("e", 64, 512, 64, 64),
                _dw("d", 512, 64, 64),
                _pw("p", 512, 256, 64, 64),
            )
        )
        assert best_chain_tiling(chain, tiny_gpu) is None

    def _net(self, dtype=DType.FP32):
        g = ModelGraph("m")
        first = standard_conv(g, "stem", 3, 16, 56, 56, stride=1, dtype=dtype)
        last = inverted_residual_block(g, "ir1", 16, 16, 56, 56, after=first, dtype=dtype)
        inverted_residual_block(g, "ir2", 16, 24, 56, 56, stride=2, after=last, dtype=dtype)
        return g

    def test_max_chain_1_never_fuses(self):
        plan = FusePlanner(ORIN, max_chain=1).plan(self._net())
        assert plan.fcm_steps == []

    def test_max_chain_3_fuses_inverted_residual_runs(self):
        plan = FusePlanner(ORIN, max_chain=3).plan(self._net())
        assert any(s.length == 3 for s in plan.fcm_steps)
        # Chains beat the pairwise plan on total estimated traffic.
        pair = FusePlanner(ORIN, max_chain=2).plan(self._net())
        assert plan.est_total_gma_bytes < pair.est_total_gma_bytes

    def test_every_layer_exactly_once(self):
        g = self._net()
        plan = FusePlanner(ORIN, max_chain=4).plan(g)
        conv_names = {c.name for c in g.conv_layers()}
        planned = {n for s in plan.steps for n in getattr(s, "layer_names", ())}
        planned |= {s.spec.name for s in plan.steps if isinstance(s, StdStep)}
        assert planned == conv_names
        fused = [n for s in plan.fcm_steps for n in s.layer_names]
        assert len(fused) == len(set(fused))

    def test_dp_beats_any_fixed_partition(self):
        """DP optimality: total savings >= any enumerated run partition."""
        planner = FusePlanner(ORIN, max_chain=3)
        g = self._net()
        runs = g.fusion_runs()
        assert runs
        plan = planner.plan(g)
        dp_savings = sum(s.est_savings_bytes for s in plan.fcm_steps)

        def partitions(n, k):
            if n == 0:
                yield []
                return
            for length in range(1, min(k, n) + 1):
                for rest in partitions(n - length, k):
                    yield [length] + rest

        for run in runs:
            specs = list(run)
            best_alt = 0
            for part in partitions(len(specs), 3):
                total, i, ok = 0, 0, True
                for length in part:
                    if length > 1:
                        try:
                            dec = planner.evaluate_chain(tuple(specs[i : i + length]))
                        except PlanError:
                            dec = None
                        if dec is None or dec.savings_bytes <= 0:
                            ok = False
                            break
                        total += dec.savings_bytes
                    i += length
                if ok:
                    best_alt = max(best_alt, total)
            # Whole-model DP savings cover every run's best partition.
            assert dp_savings + 1e-9 >= best_alt

    def test_chain_never_worse_than_best_split(self):
        """The DP's chosen cost never exceeds the best cost of any split of
        the same run into sub-chains (LBL singletons included)."""
        planner = FusePlanner(ORIN, max_chain=3)
        specs = tuple(self._net().fusion_runs()[0])
        dec = planner.evaluate_chain(specs)
        assert dec is not None and dec.savings_bytes > 0
        # Compare against all 2-way splits.
        lbl = [planner.lbl_plan(s).gma_bytes for s in specs]
        full_chain_cost = dec.result.gma_bytes
        for cut in range(1, len(specs)):
            parts = (specs[:cut], specs[cut:])
            cost = 0
            for part in parts:
                if len(part) == 1:
                    cost += lbl[specs.index(part[0])]
                else:
                    sub = planner.evaluate_chain(part)
                    cost += sub.result.gma_bytes if sub else sum(
                        lbl[specs.index(s)] for s in part
                    )
            assert full_chain_cost <= cost

    def test_deterministic_plans(self):
        """Planning the same model twice (fresh planners) is bit-identical."""
        for max_chain in (2, 3):
            a = FusePlanner(GTX1660, max_chain=max_chain).plan(self._net())
            b = FusePlanner(GTX1660, max_chain=max_chain).plan(self._net())
            assert a.steps == b.steps

    def test_lbl_cache_keyed_by_geometry_not_name(self):
        """Two same-named layers with different shapes must not collide."""
        planner = FusePlanner(ORIN)
        small = _pw("conv1", 8, 16, 14, 14)
        big = _pw("conv1", 32, 64, 56, 56)
        r_small = planner.lbl_plan(small)
        r_big = planner.lbl_plan(big)
        assert r_small == best_lbl_tiling(small, ORIN)
        assert r_big == best_lbl_tiling(big, ORIN)
        assert r_small != r_big

    def test_explain_reports_candidates(self):
        planner = FusePlanner(ORIN, max_chain=3)
        plan = planner.plan(self._net())
        assert planner.last_candidates
        chosen = [c for c in planner.last_candidates if c.chosen]
        assert {tuple(s.layer_names) for s in plan.fcm_steps} == {
            c.layers for c in chosen
        }
        lengths = {len(c.layers) for c in planner.last_candidates}
        assert lengths == {2, 3}


class TestFusedChainKernel:
    @pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8])
    @pytest.mark.parametrize(
        "kinds",
        ["pw-dw-pw", "dw-pw-pw", "pw-pw-pw", "pw-dw-pw-strided"],
    )
    def test_matches_reference_layers(self, dtype, kinds):
        if kinds == "pw-dw-pw":
            specs = (
                _pw("a", 6, 16, 12, 12, dtype),
                _dw("b", 16, 12, 12, dtype),
                _pw("c", 16, 8, 12, 12, dtype),
            )
        elif kinds == "dw-pw-pw":
            specs = (
                _dw("a", 6, 12, 12, dtype),
                _pw("b", 6, 16, 12, 12, dtype),
                _pw("c", 16, 8, 12, 12, dtype),
            )
        elif kinds == "pw-pw-pw":
            specs = (
                _pw("a", 6, 16, 12, 12, dtype),
                _pw("b", 16, 12, 12, 12, dtype),
                _pw("c", 12, 8, 12, 12, dtype),
            )
        else:  # strided interior DW
            specs = (
                _pw("a", 6, 16, 12, 12, dtype),
                _dw("b", 16, 12, 12, dtype, stride=2),
                _pw("c", 16, 8, 6, 6, dtype),
            )
        params = [make_layer_params(specs[0])]
        for spec in specs[1:]:
            params.append(chain_quant(params[-1], spec))
        kernel = FusedChainKernel(params, tile_h=4, tile_w=4, tile_m=8)
        x = random_ifm(specs[0], seed=3)
        res = kernel.simulate(x, ORIN)
        ref = x
        for p in params:
            ref = ref_layer(p, ref)
        if dtype is DType.INT8:
            np.testing.assert_array_equal(res.output, ref)
        else:
            np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-5)

    def test_final_dw_chain(self):
        specs = (
            _pw("a", 6, 16, 12, 12),
            _pw("b", 16, 12, 12, 12),
            _dw("c", 12, 12, 12),
        )
        params = [make_layer_params(specs[0])]
        for spec in specs[1:]:
            params.append(chain_quant(params[-1], spec))
        kernel = FusedChainKernel(params, tile_h=4, tile_w=6)
        x = random_ifm(specs[0], seed=5)
        res = kernel.simulate(x, ORIN)
        ref = x
        for p in params:
            ref = ref_layer(p, ref)
        np.testing.assert_allclose(res.output, ref, rtol=1e-4, atol=1e-5)

    def test_metered_bytes_equal_measured_estimate(self):
        chain = _pdp_chain(h=16)
        params = [make_layer_params(chain.specs[0])]
        for spec in chain.specs[1:]:
            params.append(chain_quant(params[-1], spec))
        tiling = {"tile_h": 4, "tile_w": 8, "tile_m": 8}
        kernel = FusedChainKernel(params, tile_h=4, tile_w=8, tile_m=8)
        res = kernel.simulate(random_ifm(chain.specs[0]), ORIN)
        est = chain_gma(chain, tiling, "measured")
        assert res.counters.total_bytes == est.gma.total_bytes
        assert res.counters.macs == est.useful_macs
        assert res.counters.redundant_macs == est.redundant_macs
        ref = chain_counters(chain.specs, tiling)
        assert ref.total_bytes == res.counters.total_bytes

    def test_registry_routes_pairwise_and_chain(self):
        from repro.kernels.fused_dwpw import DwPwFusedKernel

        dw, pw = _dw("d", 8, 12, 12), _pw("p", 8, 16, 12, 12)
        p_dw = make_layer_params(dw)
        p_pw = chain_quant(p_dw, pw)
        k2 = build_chain_kernel(
            [p_dw, p_pw], {"tile_h": 4, "tile_w": 4, "tile_m": 8}, FcmType.DWPW
        )
        assert isinstance(k2, DwPwFusedKernel)
        chain = _pdp_chain(h=12)
        params = [make_layer_params(chain.specs[0])]
        for spec in chain.specs[1:]:
            params.append(chain_quant(params[-1], spec))
        k3 = build_chain_kernel(params, {"tile_h": 4, "tile_w": 4, "tile_m": 8})
        assert isinstance(k3, FusedChainKernel)
        with pytest.raises(UnsupportedError):
            build_chain_kernel([p_dw], {"tile_h": 4, "tile_w": 4})

    def test_capacity_check_raises_on_tiny_gpu(self, tiny_gpu):
        from repro.errors import CapacityError

        chain = _pdp_chain(h=32)
        params = [make_layer_params(chain.specs[0])]
        for spec in chain.specs[1:]:
            params.append(chain_quant(params[-1], spec))
        kernel = FusedChainKernel(params, tile_h=32, tile_w=32, tile_m=16)
        with pytest.raises(CapacityError):
            kernel.simulate(random_ifm(chain.specs[0]), tiny_gpu)


class TestPairwiseEquivalence:
    """`max_chain=2` must reproduce the pre-chain pairwise planner exactly.

    The legacy planner resolved overlapping pair candidates with a
    networkx maximum-weight matching; on the linear runs the candidates
    form, the interval DP at K=2 computes the same optimum.  This pins the
    plans (steps, tilings, estimates) bit-for-bit on real zoo models.
    """

    @staticmethod
    def _legacy_matching_plan(planner, graph):
        import networkx as nx

        from repro.ir.graph import GlueSpec
        from repro.ir.layers import ConvKind

        decisions = []
        for cand in graph.fusion_candidates():
            try:
                dec = planner.evaluate_pair(cand.first, cand.second)
            except PlanError:
                continue
            if dec is not None and dec.savings_bytes > 0:
                decisions.append(dec)
        m = nx.Graph()
        for i, dec in enumerate(decisions):
            m.add_edge(dec.first.name, dec.second.name, weight=dec.savings_bytes, idx=i)
        chosen = {}
        for u, v in nx.max_weight_matching(m, maxcardinality=False):
            dec = decisions[m.edges[u, v]["idx"]]
            chosen[dec.first.name] = dec
        fused_seconds = {d.second.name for d in chosen.values()}
        steps = []
        for spec in graph.topological():
            if isinstance(spec, GlueSpec):
                steps.append(("glue", spec.name))
                continue
            if spec.name in chosen:
                dec = chosen[spec.name]
                steps.append((
                    "fcm", dec.fcm_type, dec.first.name, dec.second.name,
                    tuple(sorted(dec.fcm.tiling.items())), dec.fcm.gma_bytes,
                ))
                continue
            if spec.name in fused_seconds:
                continue
            if spec.kind is ConvKind.STANDARD:
                steps.append(("std", spec.name))
                continue
            lbl = planner.lbl_plan(spec)
            steps.append((
                "lbl", spec.name, tuple(sorted(lbl.tiling.items())), lbl.gma_bytes,
            ))
        return steps

    @staticmethod
    def _dp_plan_signature(plan):
        from repro.planner.plan import GlueStep, LblStep

        out = []
        for s in plan.steps:
            if isinstance(s, ChainStep):
                assert s.length == 2
                out.append((
                    "fcm", s.fcm_type, s.specs[0].name, s.specs[1].name,
                    tuple(sorted(s.tiling.items())), s.est_gma_bytes,
                ))
            elif isinstance(s, LblStep):
                out.append((
                    "lbl", s.spec.name, tuple(sorted(s.tiling.items())),
                    s.est_gma_bytes,
                ))
            elif isinstance(s, StdStep):
                out.append(("std", s.spec.name))
            elif isinstance(s, GlueStep):
                out.append(("glue", s.spec.name))
        return out

    @pytest.mark.parametrize("model", ["mobilenet_v1", "mobilenet_v2"])
    @pytest.mark.parametrize("dtype", [DType.FP32, DType.INT8])
    def test_zoo_plans_identical_to_matching(self, model, dtype):
        from repro.models.zoo import build_model

        graph = build_model(model, dtype)
        dp = FusePlanner(RTX_A4000, max_chain=2).plan(graph)
        legacy = self._legacy_matching_plan(FusePlanner(RTX_A4000), graph)
        assert self._dp_plan_signature(dp) == legacy


class TestChainServing:
    def test_plan_key_includes_max_chain(self):
        from repro.serve.cache import PlanKey

        a = PlanKey.of("m", DType.FP32, ORIN, "paper", 2)
        b = PlanKey.of("m", DType.FP32, ORIN, "paper", 3)
        assert a != b

    def test_cache_distinguishes_chain_caps(self):
        from repro.serve.cache import PlanCache

        cache = PlanCache(capacity=4)
        e2 = cache.get("mobilenet_v2", DType.INT8, RTX_A4000, max_chain=2)
        e3 = cache.get("mobilenet_v2", DType.INT8, RTX_A4000, max_chain=3)
        assert cache.stats.misses == 2 and cache.stats.planner_invocations == 2
        assert e3.plan.est_total_gma_bytes < e2.plan.est_total_gma_bytes
        assert e3.plan.max_chain_length >= 3
        # Hit path still works per cap.
        again = cache.get("mobilenet_v2", DType.INT8, RTX_A4000, max_chain=3)
        assert again is e3 and cache.stats.hits == 1

    def test_server_serves_chain_plans(self, rng):
        from repro.serve.server import ModelServer

        server = ModelServer(RTX_A4000, max_chain=3)
        rep = server.submit_analytic("mobilenet_v2", batch_size=4, dtype=DType.INT8)
        assert rep.batch_size == 4
        key = server.cache.keys()[0]
        assert key.max_chain == 3
