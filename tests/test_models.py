"""Model-zoo tests: geometry, MAC budgets, fusion surface of the six DNNs."""

from __future__ import annotations

import pytest

from repro.core.dtypes import DType
from repro.errors import UnsupportedError
from repro.ir.graph import GlueSpec
from repro.ir.layers import ConvKind
from repro.models.zoo import (
    CNN_MODELS,
    MODELS,
    PAPER_LABELS,
    VIT_MODELS,
    build_model,
    model_names,
)


class TestZoo:
    def test_registry_complete(self):
        assert set(model_names()) == set(CNN_MODELS) | set(VIT_MODELS)
        assert set(PAPER_LABELS) == set(MODELS)

    def test_unknown_model(self):
        with pytest.raises(UnsupportedError):
            build_model("resnet152")

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_builds_and_validates(self, name):
        g = build_model(name)
        g.validate()
        assert len(g.conv_layers()) > 10

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_int8_variant(self, name):
        g = build_model(name, DType.INT8)
        assert all(c.dtype is DType.INT8 for c in g.conv_layers())

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_has_dw_and_pw(self, name):
        kinds = {c.kind for c in build_model(name).conv_layers()}
        assert ConvKind.DEPTHWISE in kinds and ConvKind.POINTWISE in kinds

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_fusion_candidates_exist(self, name):
        assert len(build_model(name).fusion_candidates()) >= 10


class TestMobileNetV1:
    def test_known_mac_budget(self):
        """~569M MACs at 224x224 (Howard et al. report 569M mult-adds)."""
        macs = sum(c.macs for c in build_model("mobilenet_v1").conv_layers())
        assert macs == pytest.approx(569e6, rel=0.02)

    def test_layer_count(self):
        g = build_model("mobilenet_v1")
        convs = g.conv_layers()
        assert len(convs) == 27  # stem + 13 x (dw + pw)
        assert convs[-1].out_channels == 1024
        assert convs[-1].out_h == 7

    def test_linear_no_adds(self):
        g = build_model("mobilenet_v1")
        glue_ops = {s.op for s in g.topological() if isinstance(s, GlueSpec)}
        assert "add" not in glue_ops


class TestMobileNetV2:
    def test_known_mac_budget(self):
        """~300M MACs at 224x224 (Sandler et al.)."""
        macs = sum(c.macs for c in build_model("mobilenet_v2").conv_layers())
        assert macs == pytest.approx(300e6, rel=0.05)

    def test_residual_adds_present(self):
        g = build_model("mobilenet_v2")
        adds = [s for s in g.topological() if isinstance(s, GlueSpec) and s.op == "add"]
        assert len(adds) == 10  # 10 stride-1 same-channel blocks

    def test_head(self):
        convs = build_model("mobilenet_v2").conv_layers()
        assert convs[-1].out_channels == 1280 and convs[-1].out_h == 7


class TestXception:
    def test_known_mac_budget(self):
        """~8.4G MACs at 299x299 (Chollet)."""
        macs = sum(c.macs for c in build_model("xception").conv_layers())
        assert macs == pytest.approx(8.4e9, rel=0.05)

    def test_middle_flow_geometry(self):
        g = build_model("xception")
        mid = g.spec("mid4_sep2_pw")
        assert (mid.in_channels, mid.out_channels, mid.in_h) == (728, 728, 19)

    def test_strided_shortcuts_are_pointwise(self):
        g = build_model("xception")
        s = g.spec("entry2_short")
        assert s.kind is ConvKind.POINTWISE and s.stride == 2

    def test_shortcut_not_fusable(self):
        g = build_model("xception")
        firsts = {c.first.name for c in g.fusion_candidates()}
        assert "entry1_short" not in firsts


class TestViTs:
    def test_ceit_leff_geometry(self):
        g = build_model("ceit")
        pw1 = g.spec("blk1_leff_pw1")
        dw = g.spec("blk1_leff_dw")
        assert pw1.out_channels == 768 and (dw.in_h, dw.in_w) == (14, 14)

    def test_ceit_leff_chains_are_candidates(self):
        g = build_model("ceit")
        pairs = {(c.first.name, c.second.name) for c in g.fusion_candidates()}
        assert ("blk3_leff_pw1", "blk3_leff_dw") in pairs
        assert ("blk3_leff_dw", "blk3_leff_pw2") in pairs

    def test_cmt_stage_dims(self):
        g = build_model("cmt")
        assert g.spec("s1_patch").out_channels == 64
        assert g.spec("s3_patch").out_channels == 256
        assert g.spec("s4b1_ffn_pw1").in_h == 7

    def test_cmt_lpu_residual(self):
        g = build_model("cmt")
        assert set(g.predecessors("s1b1_lpu_add")) == {"s1_patch", "s1b1_lpu_dw"}
