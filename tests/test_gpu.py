"""Tests for the simulated GPU substrate: specs, counters, memory, roofline, energy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.errors import CapacityError, ShapeError, SimulationError
from repro.gpu.counters import AccessCounters
from repro.gpu.energy import energy_of
from repro.gpu.executor import launch
from repro.gpu.memory import GlobalBuffer, SharedMemory
from repro.gpu.roofline import time_kernel
from repro.gpu.specs import ALL_GPUS, GTX1660, ORIN, RTX_A4000, gpu_by_name


class TestSpecs:
    def test_table1_capacities(self):
        """Paper Table I: SMs / CUDA cores / L1 per SM / L2."""
        assert (GTX1660.sm_count, GTX1660.cuda_cores, GTX1660.l1_kb) == (22, 1408, 96)
        assert (RTX_A4000.cuda_cores, RTX_A4000.l1_kb) == (6144, 128)
        assert (ORIN.sm_count, ORIN.cuda_cores, ORIN.l1_kb) == (16, 2048, 192)
        assert GTX1660.dram == "GDDR5" and RTX_A4000.dram == "GDDR6" and ORIN.dram == "LPDDR5"

    def test_lookup(self):
        assert gpu_by_name("rtx") is RTX_A4000
        with pytest.raises(ShapeError):
            gpu_by_name("H100")

    def test_derived(self):
        assert RTX_A4000.cores_per_sm == 128
        assert GTX1660.l1_bytes == 96 * 1024
        for g in ALL_GPUS:
            assert g.shared_bytes <= g.l1_bytes
            assert g.machine_balance(DType.INT8) == pytest.approx(
                4 * g.machine_balance(DType.FP32)
            )
            assert g.pj_per_mac(DType.INT8) == pytest.approx(g.pj_per_mac_fp32 / 4)


class TestCounters:
    def test_tally_and_merge(self):
        a = AccessCounters()
        a.read("ifm", 100)
        a.write("ofm", 50)
        a.compute(1000, redundant=100)
        a.smem(16)
        b = AccessCounters()
        b.read("weights", 10)
        b.kernel_launches = 1
        a.merge(b)
        assert a.read_bytes == 110
        assert a.write_bytes == 50
        assert a.total_bytes == 160
        assert a.total_macs == 1100
        assert a.redundancy_ratio == pytest.approx(100 / 1100)
        assert a.kernel_launches == 1
        snap = a.snapshot()
        assert snap["shared_bytes"] == 16

    def test_empty_redundancy(self):
        assert AccessCounters().redundancy_ratio == 0.0


class TestGlobalBuffer:
    def test_load_store_metered(self, rng):
        c = AccessCounters()
        arr = rng.standard_normal((4, 8)).astype(np.float32)
        buf = GlobalBuffer("x", arr, "ifm", c)
        v = buf.load((slice(0, 2), slice(None)))
        assert v.shape == (2, 8)
        assert c.global_reads["ifm"] == 2 * 8 * 4
        buf.store((slice(0, 1), slice(None)), np.ones((1, 8), np.float32))
        assert c.global_writes["ifm"] == 8 * 4
        np.testing.assert_array_equal(buf.array[0], np.ones(8))

    def test_custom_elem_bytes(self, rng):
        c = AccessCounters()
        arr = rng.integers(-5, 5, (4, 4)).astype(np.int8)
        buf = GlobalBuffer("q", arr, "ifm", c, elem_bytes=1)
        buf.load((slice(None), slice(None)))
        assert c.read_bytes == 16

    def test_load_free_not_metered(self, rng):
        c = AccessCounters()
        buf = GlobalBuffer("x", np.zeros((2, 2), np.float32), "ifm", c)
        buf.load_free((0, 0))
        assert c.read_bytes == 0

    def test_store_shape_mismatch(self):
        c = AccessCounters()
        buf = GlobalBuffer("x", np.zeros((2, 2), np.float32), "ofm", c)
        with pytest.raises(SimulationError):
            buf.store((slice(None), slice(None)), np.zeros(3, np.float32))


class TestSharedMemory:
    def test_alloc_and_capacity(self):
        c = AccessCounters()
        sm = SharedMemory(100, c)
        sm.alloc("a", (10,), np.float32, elem_bytes=4)
        assert sm.used_bytes == 40
        with pytest.raises(CapacityError):
            sm.alloc("b", (20,), np.float32, elem_bytes=4)
        sm.free("a")
        assert sm.used_bytes == 0
        assert sm.peak_bytes == 40

    def test_traffic_charged(self):
        c = AccessCounters()
        sm = SharedMemory(1000, c)
        sm.alloc("comm", (5,), np.float32, elem_bytes=4)
        sm.write("comm", np.ones(5, np.float32))
        out = sm.read("comm")
        np.testing.assert_array_equal(out, np.ones(5))
        assert c.shared_bytes == 2 * 20

    def test_double_alloc_and_missing(self):
        sm = SharedMemory(100, AccessCounters())
        sm.alloc("a", (2,), np.float32, 4)
        with pytest.raises(SimulationError):
            sm.alloc("a", (2,), np.float32, 4)
        with pytest.raises(SimulationError):
            sm.read("nope")


class _ToyKernel:
    """Counts blocks and allocates a fixed shared slab per block."""

    name = "toy"

    def __init__(self, blocks: int, shared_bytes: int):
        self._blocks = blocks
        self._shared = shared_bytes
        self.ran = 0

    def grid(self):
        return [(i,) for i in range(self._blocks)]

    def run_block(self, coord, shared):
        shared.alloc("slab", (self._shared,), np.int8, 1)
        self.ran += 1


class TestExecutor:
    def test_launch_counts(self, tiny_gpu):
        c = AccessCounters()
        k = _ToyKernel(blocks=9, shared_bytes=128)
        stats = launch(k, tiny_gpu, c)
        assert k.ran == 9
        assert stats.num_blocks == 9
        assert stats.waves == 3  # 9 blocks over 4 SMs
        assert stats.peak_shared_bytes == 128
        assert c.kernel_launches == 1
        assert stats.occupies_all_sms(tiny_gpu)

    def test_shared_overflow_fails_launch(self, tiny_gpu):
        k = _ToyKernel(blocks=1, shared_bytes=tiny_gpu.shared_bytes + 1)
        with pytest.raises(CapacityError):
            launch(k, tiny_gpu, AccessCounters())

    def test_empty_grid_rejected(self, tiny_gpu):
        k = _ToyKernel(blocks=0, shared_bytes=1)
        with pytest.raises(SimulationError):
            launch(k, tiny_gpu, AccessCounters())


class TestRoofline:
    def _counters(self, nbytes=1000, macs=1000):
        c = AccessCounters()
        c.read("x", nbytes // 2)
        c.write("y", nbytes - nbytes // 2)
        c.compute(macs)
        c.kernel_launches = 1
        return c

    def test_memory_bound_classification(self, tiny_gpu):
        # Tons of bytes, no compute -> memory bound.
        t = time_kernel(self._counters(nbytes=10**6, macs=10), tiny_gpu, DType.FP32)
        assert t.bound == "M"
        t2 = time_kernel(self._counters(nbytes=10, macs=10**7), tiny_gpu, DType.FP32)
        assert t2.bound == "C"

    def test_total_is_max_plus_launch(self, tiny_gpu):
        c = self._counters()
        t = time_kernel(c, tiny_gpu, DType.FP32)
        assert t.t_total_s == pytest.approx(
            max(t.t_memory_s, t.t_compute_s) + tiny_gpu.kernel_launch_us * 1e-6
        )

    def test_int8_compute_4x_faster(self, tiny_gpu):
        c = self._counters(nbytes=10, macs=10**6)
        t32 = time_kernel(c, tiny_gpu, DType.FP32)
        t8 = time_kernel(c, tiny_gpu, DType.INT8)
        assert t32.t_compute_s == pytest.approx(4 * t8.t_compute_s)

    def test_read_write_split(self, tiny_gpu):
        c = AccessCounters()
        c.read("x", 300)
        c.write("y", 100)
        t = time_kernel(c, tiny_gpu, DType.FP32)
        assert t.t_mem_read_s == pytest.approx(0.75 * t.t_memory_s)
        assert t.t_mem_write_s == pytest.approx(0.25 * t.t_memory_s)

    def test_knob_validation(self, tiny_gpu):
        with pytest.raises(ValueError):
            time_kernel(self._counters(), tiny_gpu, DType.FP32, utilization=0)
        with pytest.raises(ValueError):
            time_kernel(self._counters(), tiny_gpu, DType.FP32, bandwidth_efficiency=1.5)


class TestEnergy:
    def test_components_positive_and_additive(self, tiny_gpu):
        c = AccessCounters()
        c.read("x", 10**6)
        c.compute(10**6)
        c.smem(10**4)
        c.kernel_launches = 1
        t = time_kernel(c, tiny_gpu, DType.FP32)
        e = energy_of(c, t, tiny_gpu, DType.FP32)
        assert e.total_j == pytest.approx(e.static_j + e.dram_j + e.compute_j + e.shared_j)
        assert min(e.static_j, e.dram_j, e.compute_j, e.shared_j) > 0

    def test_dram_energy_tracks_bytes(self, tiny_gpu):
        c1, c2 = AccessCounters(), AccessCounters()
        c1.read("x", 1000)
        c2.read("x", 2000)
        t1 = time_kernel(c1, tiny_gpu, DType.FP32)
        t2 = time_kernel(c2, tiny_gpu, DType.FP32)
        e1 = energy_of(c1, t1, tiny_gpu, DType.FP32)
        e2 = energy_of(c2, t2, tiny_gpu, DType.FP32)
        assert e2.dram_j == pytest.approx(2 * e1.dram_j)
