"""Tests of the paper-artifact harnesses (Fig. 1/6/7/8/9/10/11, Tables II/III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dtypes import DType
from repro.experiments.analytic import fcm_counters, lbl_counters, pair_lbl_counters
from repro.experiments.fig1 import figure1
from repro.experiments.fig10_fig11 import end_to_end_point
from repro.experiments.fig6_fig7 import fcm_vs_lbl_case, figure6_7
from repro.experiments.fig8 import figure8
from repro.experiments.fig9 import figure9
from repro.experiments.fusion_cases import select_fusion_cases, table2_rows
from repro.experiments.reporting import format_table
from repro.experiments.table3 import table3
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000


@pytest.fixture(scope="module")
def fp32_cases():
    return select_fusion_cases(DType.FP32)


@pytest.fixture(scope="module")
def int8_cases():
    return select_fusion_cases(DType.INT8)


class TestFig1:
    def test_paper_shape(self):
        std, dsc, fused = figure1()
        assert std.operations == 1.0 and std.memory_accesses == 1.0
        # DSC: ~12% of the operations (paper Fig. 1 reports 12%).
        assert 0.10 < dsc.operations < 0.14
        # DSC *raises* memory accesses; fusion brings them back down.
        assert dsc.memory_accesses > 1.2
        assert fused.memory_accesses < 1.0
        assert fused.operations == dsc.operations

    def test_fusion_saves_dsc_intermediate(self):
        _, dsc, fused = figure1()
        # The saving is exactly the intermediate round trip.
        assert fused.feature_maps < dsc.feature_maps


class TestTable2:
    def test_case_count_and_ids(self, fp32_cases, int8_cases):
        assert 8 <= len(fp32_cases) <= 12
        assert 8 <= len(int8_cases) <= 12
        assert fp32_cases[0].case_id == "F1"
        assert int8_cases[0].case_id == "F1_8"

    def test_every_model_contributes(self, fp32_cases):
        assert len({c.model for c in fp32_cases}) == 6

    def test_fp32_dominated_by_redundant_modules(self, fp32_cases):
        """Paper: the dominant FCM using FP32 is PWDW_R."""
        redundant = [c for c in fp32_cases if c.fcm_type.name == "PWDW_R"]
        assert len(redundant) > len(fp32_cases) / 2

    def test_int8_less_redundancy_than_fp32(self, fp32_cases, int8_cases):
        """Paper §VI-A: INT8 fusions have less redundant computation."""
        mean32 = np.mean([c.redundancy_ratio for c in fp32_cases])
        mean8 = np.mean([c.redundancy_ratio for c in int8_cases])
        assert mean8 < mean32

    def test_redundancy_only_on_pwdw_r(self, fp32_cases, int8_cases):
        for c in fp32_cases + int8_cases:
            if c.fcm_type.name != "PWDW_R":
                assert c.redundancy_ratio == 0.0
            else:
                assert c.redundancy_ratio > 0.0

    def test_rows_render(self):
        rows = table2_rows(DType.FP32)
        assert rows and {"case", "model", "fcm", "redundancy", "pairs"} <= set(rows[0])
        assert format_table(list(rows[0]), [list(r.values()) for r in rows])


class TestFig6Fig7:
    def test_fcm_wins_vast_majority(self, fp32_cases):
        pts = figure6_7(DType.FP32)
        wins = sum(p.speedup > 1 for p in pts)
        assert wins / len(pts) > 0.85  # paper: 67/72

    def test_every_point_has_positive_times(self):
        for p in figure6_7(DType.FP32, gpus=(GTX1660,)):
            assert p.lbl_time_s > 0 and p.fcm_time_s > 0
            assert 0 <= p.redundancy_ratio < 0.5

    def test_int8_average_not_worse(self):
        """Paper: INT8 average speedup >= FP32's."""
        s32 = np.mean([p.speedup for p in figure6_7(DType.FP32)])
        s8 = np.mean([p.speedup for p in figure6_7(DType.INT8)])
        assert s8 >= 0.9 * s32

    def test_gma_always_saved_when_faster(self):
        for p in figure6_7(DType.FP32, gpus=(ORIN,)):
            if p.speedup > 1.05:
                assert p.fcm_gma_bytes < p.lbl_gma_bytes

    def test_single_case_api(self, fp32_cases):
        p = fcm_vs_lbl_case(fp32_cases[0], RTX_A4000)
        assert p is not None and p.gpu == "RTX"


class TestFig8:
    def test_bars_normalized_to_lbl(self):
        bars = figure8(gpus=(GTX1660,))
        by_case = {}
        for b in bars:
            by_case.setdefault((b.case_id, b.gpu), {})[b.variant] = b
        for (case, _gpu), d in by_case.items():
            assert d["LBL"].total == pytest.approx(1.0)
            assert d["FCM"].total < 1.0, f"{case}: fusion must cut GM time"
            for b in d.values():
                assert b.read_share >= 0 and b.write_share >= 0

    def test_fcm_cuts_writes(self):
        """The intermediate's store disappears in every fused case."""
        bars = figure8(gpus=(RTX_A4000,))
        by_case = {}
        for b in bars:
            by_case.setdefault(b.case_id, {})[b.variant] = b
        for case, d in by_case.items():
            assert d["FCM"].write_share < d["LBL"].write_share, case


class TestFig9:
    @pytest.fixture(scope="class")
    def points(self):
        return figure9(gpus=(GTX1660, RTX_A4000))

    def test_implicit_beats_explicit(self, points):
        for p in points:
            assert p.implicit_gemm_speedup > p.gemm_speedup

    def test_ours_beats_best_cudnn(self, points):
        """Paper §VI-B: LBL outperforms cuDNN in all cases; FCM more so."""
        assert all(p.lbl_speedup > 1 for p in points)
        assert all(p.fcm_speedup >= p.lbl_speedup * 0.95 for p in points)

    def test_headline_gma_savings(self, points):
        """Paper: LBL saves up to 63%, FCM up to 83% of GMA vs cuDNN."""
        assert 0.4 < max(p.lbl_gma_saving for p in points) < 0.75
        assert 0.7 < max(p.fcm_gma_saving for p in points) < 0.95


class TestTable3:
    def test_rows_cover_cases_and_gpus(self):
        rows = table3()
        assert {r.gpu for r in rows} == {"GTX", "RTX"}
        for r in rows:
            assert r.lbl_first_bound in "CM" and r.fcm_bound in "CM"

    def test_memory_bound_lbl_majority(self):
        """DW/PW LBL kernels are mostly memory-bound (paper Table III)."""
        rows = table3()
        lbl_bounds = [r.lbl_first_bound for r in rows] + [
            r.lbl_second_bound for r in rows
        ]
        assert lbl_bounds.count("M") > len(lbl_bounds) / 2

    def test_fusion_shifts_toward_compute(self):
        """Fusing removes traffic: some M,M pairs become C (paper's GTX story)."""
        rows = table3()
        flips = [
            r for r in rows
            if r.lbl_first_bound == r.lbl_second_bound == "M" and r.fcm_bound == "C"
        ]
        assert flips


class TestEndToEnd:
    @pytest.mark.parametrize("model", ["mobilenet_v1", "mobilenet_v2"])
    def test_we_beat_tvm(self, model):
        p = end_to_end_point(model, GTX1660, DType.FP32)
        assert p.speedup_vs_tvm > 1.0
        assert p.energy_vs_tvm < 1.0
        assert 0 < p.fused_fraction < 1

    def test_energy_savings_exceed_latency_savings(self):
        """Paper §VI-C: normalized energy < 1/speedup on average."""
        pts = [
            end_to_end_point(m, ORIN, DType.FP32)
            for m in ("mobilenet_v1", "mobilenet_v2")
        ]
        mean_energy = np.mean([p.energy_vs_tvm for p in pts])
        mean_inv_speedup = np.mean([1 / p.speedup_vs_tvm for p in pts])
        assert mean_energy <= mean_inv_speedup + 0.05


class TestAnalyticCounters:
    def test_pair_merge(self):
        from helpers import dw_spec, pw_spec

        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        a = lbl_counters(pw, {"tile_m": 8, "tile_hw": 36})
        b = lbl_counters(dw, {"tile_c": 8, "tile_h": 4, "tile_w": 4})
        pair = pair_lbl_counters(
            pw, dw, {"tile_m": 8, "tile_hw": 36}, {"tile_c": 8, "tile_h": 4, "tile_w": 4}
        )
        assert pair.total_bytes == a.total_bytes + b.total_bytes
        assert pair.kernel_launches == 2

    def test_fcm_counters_track_redundancy(self):
        from helpers import dw_spec, pw_spec
        from repro.core.fcm import FcmType

        pw = pw_spec(c_in=8, c_out=16, h=12, w=12)
        dw = dw_spec(c=16, h=12, w=12)
        c = fcm_counters(
            FcmType.PWDW_R, pw, dw, {"tile_f": 8, "tile_h": 4, "tile_w": 4}
        )
        assert c.redundant_macs > 0 and c.kernel_launches == 1
