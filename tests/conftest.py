"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.specs import GpuSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_gpu() -> GpuSpec:
    """A small GPU so capacity/occupancy constraints are easy to trip."""
    return GpuSpec(
        name="tiny",
        compute_capability="0.0",
        sm_count=4,
        cuda_cores=256,
        l1_kb=16,
        shared_kb=8,
        l2_mb=0.5,
        dram="TEST",
        dram_bw_gbps=50.0,
        clock_ghz=1.0,
    )
