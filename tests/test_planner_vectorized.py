"""Parity suite: the vectorized grid search vs the scalar reference oracle.

The vectorized engine must be a pure *implementation* change — bit-identical
``SearchResult`` winners and whole-model plans, including the rank order's
tie-breaking (warp-multiple first, GMA, then larger tiles, first minimum in
sweep order wins).  The hypothesis property tests pin the stronger invariant
underneath: every grid cell's feasibility and GMA equals the scalar
predicate evaluated pointwise, so parity of winners is not an accident of
the argmin.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import dw_spec, pw_spec
from repro.core.chain import FusedChain
from repro.core.dtypes import DType
from repro.core.fcm import FcmType
from repro.core.tiling import DwTiling, PwTiling
from repro.errors import PlanError, UnsupportedError
from repro.gpu.specs import GTX1660, ORIN, RTX_A4000
from repro.models.zoo import build_model
from repro.planner.chain_costs import chain_feasible, chain_gma
from repro.planner.costs import dw_feasible, dw_gma, pw_feasible, pw_gma
from repro.planner.fcm_costs import fcm_feasible, fcm_gma
from repro.planner.grid_search import chain_grid, fcm_grid, lbl_grid, pow2_candidates
from repro.planner.memo import GeometryMemo, shared_memo
from repro.planner.planner import FusePlanner
from repro.planner.search import (
    DEFAULT_SEARCH_ENGINE,
    SEARCH_ENGINES,
    best_chain_tiling,
    best_fcm_tiling,
    best_lbl_tiling,
    resolve_search_engine,
)

GPUS = (GTX1660, RTX_A4000, ORIN)
CONVENTIONS = ("paper", "measured")


def _fcm_pair(fcm_type: FcmType, dtype: DType = DType.FP32):
    """A valid (first, second) pair for each FCM variant."""
    if fcm_type is FcmType.DWPW:
        dw = dw_spec(c=32, h=28, w=28, dtype=dtype)
        return dw, pw_spec(c_in=32, c_out=64, h=28, w=28, dtype=dtype)
    if fcm_type in (FcmType.PWDW, FcmType.PWDW_R):
        pw = pw_spec(c_in=16, c_out=32, h=28, w=28, dtype=dtype)
        return pw, dw_spec(c=32, h=28, w=28, dtype=dtype)
    return (
        pw_spec(c_in=16, c_out=32, h=14, w=14, dtype=dtype),
        pw_spec(c_in=32, c_out=64, h=14, w=14, dtype=dtype),
    )


def _chain3(dtype: DType = DType.FP32) -> FusedChain:
    return FusedChain((
        pw_spec("c_pw1", c_in=16, c_out=32, h=28, w=28, dtype=dtype),
        dw_spec("c_dw", c=32, h=28, w=28, dtype=dtype),
        pw_spec("c_pw2", c_in=32, c_out=64, h=28, w=28, dtype=dtype),
    ))


class TestPow2Candidates:
    def test_tuple_sorted_unique_includes_limit(self):
        assert pow2_candidates(100) == (1, 2, 4, 8, 16, 32, 64, 100)
        assert pow2_candidates(64) == (1, 2, 4, 8, 16, 32, 64)
        assert pow2_candidates(784, minimum=4) == (4, 8, 16, 32, 64, 128, 256, 512, 784)

    def test_minimum_above_limit_yields_limit(self):
        assert pow2_candidates(3, minimum=4) == (3,)

    def test_lru_cached_identity(self):
        # The whole point of hoisting: repeat calls return the same tuple.
        assert pow2_candidates(112) is pow2_candidates(112)


class TestEngineResolution:
    def test_default_and_roster(self):
        assert resolve_search_engine(None) == DEFAULT_SEARCH_ENGINE == "vectorized"
        for e in SEARCH_ENGINES:
            assert resolve_search_engine(e) == e

    def test_unknown_engine_rejected(self):
        with pytest.raises(UnsupportedError):
            resolve_search_engine("bogus")
        with pytest.raises(UnsupportedError):
            FusePlanner(RTX_A4000, search_engine="bogus")


class TestDirectSearchParity:
    """best_* with engine='vectorized' equals engine='reference' exactly."""

    @pytest.mark.parametrize("gpu", GPUS, ids=lambda g: g.name)
    @pytest.mark.parametrize("convention", CONVENTIONS)
    @pytest.mark.parametrize("dtype", (DType.FP32, DType.INT8))
    def test_lbl(self, gpu, convention, dtype):
        for spec in (
            pw_spec(c_in=32, c_out=64, h=56, w=56, dtype=dtype),
            pw_spec(c_in=144, c_out=24, h=28, w=28, dtype=dtype),
            dw_spec(c=32, h=56, w=56, dtype=dtype),
            dw_spec(c=96, h=28, w=28, stride=2, dtype=dtype),
        ):
            vec = best_lbl_tiling(spec, gpu, convention, engine="vectorized")
            ref = best_lbl_tiling(spec, gpu, convention, engine="reference")
            assert vec == ref

    @pytest.mark.parametrize("gpu", GPUS, ids=lambda g: g.name)
    @pytest.mark.parametrize("convention", CONVENTIONS)
    @pytest.mark.parametrize("fcm_type", list(FcmType), ids=lambda t: t.name)
    def test_fcm(self, gpu, convention, fcm_type):
        for dtype in (DType.FP32, DType.INT8):
            first, second = _fcm_pair(fcm_type, dtype)
            vec = best_fcm_tiling(fcm_type, first, second, gpu, convention,
                                  engine="vectorized")
            ref = best_fcm_tiling(fcm_type, first, second, gpu, convention,
                                  engine="reference")
            assert vec == ref  # including both being None (infeasible)

    @pytest.mark.parametrize("gpu", GPUS, ids=lambda g: g.name)
    @pytest.mark.parametrize("convention", CONVENTIONS)
    def test_chain(self, gpu, convention):
        chain = _chain3()
        vec = best_chain_tiling(chain, gpu, convention, engine="vectorized")
        ref = best_chain_tiling(chain, gpu, convention, engine="reference")
        assert vec == ref

    def test_infeasible_lbl_raises_same_error(self):
        from repro.gpu.specs import GpuSpec

        nano = GpuSpec(
            name="nano", compute_capability="0", sm_count=100000, cuda_cores=1,
            l1_kb=1, shared_kb=1, l2_mb=0.1, dram="X", dram_bw_gbps=1, clock_ghz=1,
        )
        # Too few blocks to cover 100000 SMs: infeasible for both engines.
        for engine in SEARCH_ENGINES:
            with pytest.raises(PlanError):
                best_lbl_tiling(pw_spec(), nano, engine=engine)


class TestPlanParity:
    """Whole-model plans are bit-identical across engines (the acceptance
    criterion).  Fresh memos everywhere: the reference planner must search,
    not replay the vectorized planner's winners."""

    @pytest.mark.parametrize("gpu", (GTX1660, RTX_A4000), ids=lambda g: g.name)
    @pytest.mark.parametrize("model", ("mobilenet_v1", "mobilenet_v2", "xception"))
    def test_zoo_fp32(self, model, gpu):
        graph = build_model(model, DType.FP32)
        vec = FusePlanner(gpu, search_engine="vectorized", memo=GeometryMemo()).plan(graph)
        ref = FusePlanner(gpu, search_engine="reference", memo=GeometryMemo()).plan(graph)
        assert vec.steps == ref.steps

    @pytest.mark.parametrize("convention", CONVENTIONS)
    @pytest.mark.parametrize("dtype", (DType.FP32, DType.INT8))
    def test_conventions_and_dtypes(self, convention, dtype):
        graph = build_model("mobilenet_v2", dtype)
        vec = FusePlanner(ORIN, convention, search_engine="vectorized",
                          memo=GeometryMemo()).plan(graph)
        ref = FusePlanner(ORIN, convention, search_engine="reference",
                          memo=GeometryMemo()).plan(graph)
        assert vec.steps == ref.steps

    @pytest.mark.parametrize("max_chain", (3, 4))
    def test_chains(self, max_chain):
        graph = build_model("proxylessnas", DType.FP32)
        vec = FusePlanner(RTX_A4000, max_chain=max_chain,
                          search_engine="vectorized", memo=GeometryMemo()).plan(graph)
        ref = FusePlanner(RTX_A4000, max_chain=max_chain,
                          search_engine="reference", memo=GeometryMemo()).plan(graph)
        assert vec.steps == ref.steps


class TestGridPointwise:
    """Every grid cell equals the scalar predicate — not just the argmin."""

    @settings(max_examples=25, deadline=None)
    @given(
        c_in=st.integers(1, 96), c_out=st.integers(1, 96),
        hw=st.integers(4, 32), stride=st.sampled_from((1, 2)),
        convention=st.sampled_from(CONVENTIONS),
        dtype=st.sampled_from((DType.FP32, DType.INT8)),
    )
    def test_pw_grid_matches_scalar(self, c_in, c_out, hw, stride, convention, dtype):
        spec = pw_spec(c_in=c_in, c_out=c_out, h=hw, w=hw, stride=stride, dtype=dtype)
        grid = lbl_grid(spec, ORIN, convention)
        for cell in np.ndindex(grid.shape):
            t = grid.tiling_at(int(np.ravel_multi_index(cell, grid.shape)))
            tiling = PwTiling(t["tile_m"], t["tile_hw"])
            assert bool(grid.feasible[cell]) == pw_feasible(spec, tiling, ORIN)
            assert int(grid.gma_bytes[cell]) == pw_gma(spec, tiling, convention).total_bytes

    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(1, 96), hw=st.integers(4, 32),
        kernel=st.sampled_from((3, 5)), stride=st.sampled_from((1, 2)),
        convention=st.sampled_from(CONVENTIONS),
    )
    def test_dw_grid_matches_scalar(self, c, hw, kernel, stride, convention):
        spec = dw_spec(c=c, h=hw, w=hw, kernel=kernel, stride=stride)
        grid = lbl_grid(spec, GTX1660, convention)
        for cell in np.ndindex(grid.shape):
            t = grid.tiling_at(int(np.ravel_multi_index(cell, grid.shape)))
            tiling = DwTiling(t["tile_c"], t["tile_h"], t["tile_w"])
            assert bool(grid.feasible[cell]) == dw_feasible(spec, tiling, GTX1660)
            assert int(grid.gma_bytes[cell]) == dw_gma(spec, tiling, convention).total_bytes

    @settings(max_examples=15, deadline=None)
    @given(
        c=st.sampled_from((8, 16, 32)), m=st.sampled_from((8, 24, 64)),
        hw=st.integers(6, 24), stride=st.sampled_from((1, 2)),
        fcm_type=st.sampled_from(list(FcmType)),
        convention=st.sampled_from(CONVENTIONS),
    )
    def test_fcm_grid_matches_scalar(self, c, m, hw, stride, fcm_type, convention):
        if fcm_type is FcmType.DWPW:
            dw = dw_spec(c=c, h=hw, w=hw, stride=stride)
            first, second = dw, pw_spec(c_in=c, c_out=m, h=dw.out_h, w=dw.out_w)
        elif fcm_type in (FcmType.PWDW, FcmType.PWDW_R):
            first = pw_spec(c_in=m, c_out=c, h=hw, w=hw)
            second = dw_spec(c=c, h=hw, w=hw, stride=stride)
        else:
            first = pw_spec(c_in=c, c_out=m, h=hw, w=hw)
            second = pw_spec(c_in=m, c_out=2 * m, h=hw, w=hw)
        grid = fcm_grid(fcm_type, first, second, RTX_A4000, convention)
        for cell in np.ndindex(grid.shape):
            t = grid.tiling_at(int(np.ravel_multi_index(cell, grid.shape)))
            assert bool(grid.feasible[cell]) == fcm_feasible(
                fcm_type, first, second, t, RTX_A4000
            )
            if grid.feasible[cell]:
                cost = fcm_gma(fcm_type, first, second, t, convention)
                assert int(grid.gma_bytes[cell]) == cost.gma.total_bytes
                red = int(grid.redundant_macs[cell])
                useful = int(grid.useful_macs[cell])
                total = red + useful
                ratio = red / total if total else 0.0
                assert ratio == cost.redundancy_ratio

    @pytest.mark.parametrize("convention", CONVENTIONS)
    def test_chain_grid_matches_scalar(self, convention):
        chain = _chain3()
        grid = chain_grid(chain, ORIN, convention)
        for cell in np.ndindex(grid.shape):
            t = grid.tiling_at(int(np.ravel_multi_index(cell, grid.shape)))
            assert bool(grid.feasible[cell]) == chain_feasible(chain, t, ORIN)
            if grid.feasible[cell]:
                cost = chain_gma(chain, t, convention)
                assert int(grid.gma_bytes[cell]) == cost.gma.total_bytes


class TestGeometryMemo:
    def test_hit_skips_search(self):
        memo = GeometryMemo()
        spec = pw_spec(c_in=32, c_out=64, h=28, w=28)
        first = best_lbl_tiling(spec, RTX_A4000, memo=memo)
        calls = 0

        def counting():
            nonlocal calls
            calls += 1
            return None

        again = memo.get_or_search(memo.lbl_key(spec, RTX_A4000, "paper"), counting)
        assert calls == 0 and again == first
        assert memo.hits == 1 and memo.misses == 1

    def test_infeasible_none_is_memoized(self):
        # A GPU with more SMs than any tiling can cover: the fused module is
        # infeasible, and the None outcome must be stored, not re-proved.
        from repro.gpu.specs import GpuSpec

        wide = GpuSpec(
            name="wide", compute_capability="0", sm_count=100000, cuda_cores=1,
            l1_kb=128, shared_kb=96, l2_mb=4, dram="X", dram_bw_gbps=100,
            clock_ghz=1,
        )
        memo = GeometryMemo()
        first, second = _fcm_pair(FcmType.PWPW)
        r1 = best_fcm_tiling(FcmType.PWPW, first, second, wide, memo=memo)
        r2 = best_fcm_tiling(FcmType.PWPW, first, second, wide, memo=memo)
        assert r1 is None and r2 is None
        assert memo.hits == 1 and len(memo) == 1

    def test_exceptions_are_not_memoized(self):
        memo = GeometryMemo()

        def boom():
            raise PlanError("transient")

        with pytest.raises(PlanError):
            memo.get_or_search(("k",), boom)
        assert len(memo) == 0
        assert memo.get_or_search(("k",), lambda: None) is None

    def test_shared_across_planner_instances(self):
        memo = GeometryMemo()
        graph = build_model("mobilenet_v1", DType.FP32)
        p1 = FusePlanner(GTX1660, search_engine="vectorized", memo=memo).plan(graph)
        searched = memo.misses
        p2 = FusePlanner(GTX1660, search_engine="vectorized", memo=memo).plan(graph)
        assert p1.steps == p2.steps
        assert memo.misses == searched  # second planner replayed every search
        assert memo.hits > 0

    def test_default_is_the_process_shared_memo(self):
        assert FusePlanner(RTX_A4000).memo is shared_memo()

    def test_save_load_round_trip(self, tmp_path):
        memo = GeometryMemo()
        best_lbl_tiling(dw_spec(c=32, h=28, w=28), GTX1660, memo=memo)
        first, second = _fcm_pair(FcmType.PWPW)
        best_fcm_tiling(FcmType.PWPW, first, second, ORIN, memo=memo)  # a None row
        best_chain_tiling(_chain3(), RTX_A4000, memo=memo)
        path = tmp_path / "memo.jsonl"
        memo.save(path)
        loaded = GeometryMemo.load(path)
        assert loaded.dumps() == memo.dumps()
        assert len(loaded) == len(memo)
        # Loaded winners serve lookups without searching.
        res = best_lbl_tiling(dw_spec(c=32, h=28, w=28), GTX1660, memo=loaded)
        assert res == best_lbl_tiling(dw_spec(c=32, h=28, w=28), GTX1660)
        assert loaded.hits == 1 and loaded.misses == 0

    def test_corrupt_and_foreign_files_rejected(self, tmp_path):
        for text in (
            "",
            "not json\n",
            '{"kind":"something-else","schema":1}\n',
            '{"kind":"repro-planmemo","schema":99}\n',
            '{"kind":"repro-planmemo","schema":1}\n{broken\n',
        ):
            p = tmp_path / "bad.jsonl"
            p.write_text(text, encoding="utf-8")
            with pytest.raises(PlanError):
                GeometryMemo.load(p)
